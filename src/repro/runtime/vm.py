"""Register VM: executes bytecode from :mod:`repro.runtime.bytecode`.

Drop-in replacement for the tree-walking
:class:`~repro.runtime.interpreter.Interpreter` (same constructor, same
``call``/``bind_global``/``profile``/``steps`` surface), with every
per-step isinstance check and dict lookup moved to compile time. Functions
are lowered lazily on first call and cached for the lifetime of the VM.

Profiles are **count-identical** to the reference engine: dynamic block
entries are tallied in dense per-function arrays (one increment per taken
CFG edge) and re-keyed to the originating ``BasicBlock`` objects when the
``profile`` property is read, so Figure 17/18 and Table 3 numbers do not
depend on the engine. The step budget likewise counts block entries,
matching the reference engine's accounting exactly.
"""

from __future__ import annotations

from ..errors import InterpreterError
from ..ir.module import Module
from .bytecode import (
    OP_ALLOCA,
    OP_BIN,
    OP_BR,
    OP_CALL_API,
    OP_CALL_FN,
    OP_GEP,
    OP_JMP,
    OP_LOAD,
    OP_LOADIDX,
    OP_LOADN,
    OP_NAT1,
    OP_NAT2,
    OP_NATN,
    OP_RAND,
    OP_RET,
    OP_SELECT,
    OP_STORE,
    OP_STOREIDX,
    OP_STOREN,
    OP_UN,
    BytecodeFunction,
    compile_function,
)
from .interpreter import LCG, Profile, _flatten
from .memory import Buffer, Pointer

_MEMORY_OPS = frozenset((OP_LOADIDX, OP_STOREIDX, OP_GEP, OP_LOAD, OP_STORE,
                         OP_LOADN, OP_STOREN))

_BUDGET_MSG = "interpreter step budget exceeded"


class VirtualMachine:
    """Executes IR modules via flat register bytecode."""

    def __init__(self, module: Module, api_runtime=None,
                 max_steps: int = 500_000_000, seed: int = 12345,
                 profile: bool = True):
        self.module = module
        self.api_runtime = api_runtime
        self.max_steps = max_steps
        self.steps = 0
        self.profiling = profile
        self._profile_cache: Profile | None = None
        self.rng = LCG(seed)
        self.globals: dict[str, Buffer] = {}
        for gv in module.globals.values():
            buffer = Buffer.for_type(gv.name, gv.value_type)
            if gv.initializer is not None:
                flat = _flatten(gv.initializer)
                buffer.data[:len(flat)] = flat
            self.globals[gv.name] = buffer
        self._bc: dict[str, BytecodeFunction] = {}
        self._protos: dict[str, list] = {}
        self._counts: dict[str, list[int] | None] = {}

    # -- public API ---------------------------------------------------------------
    def bind_global(self, name: str, array) -> Buffer:
        """Replace a global's storage with (a copy of) a numpy array."""
        import numpy as np

        gv = self.module.globals.get(name)
        if gv is None:
            raise InterpreterError(f"no global @{name}")
        buffer = self.globals[name]
        flat = np.asarray(array).reshape(-1).astype(buffer.data.dtype)
        buffer.data[:flat.size] = flat
        return buffer

    def call(self, name: str, args: list):
        function = self.module.functions.get(name)
        if function is None or function.is_declaration():
            raise InterpreterError(f"cannot call @{name}")
        self._profile_cache = None
        return self._run(self._compiled(name), list(args))

    @property
    def profile(self) -> Profile:
        """Per-block dynamic counts, keyed identically to the reference
        engine (by the ``BasicBlock`` objects of ``self.module``).

        The merged view is cached between executions: rebuilding it on
        every read was O(total blocks) per access, and callers poll it
        (cost model, reports). Any ``call`` invalidates the cache.
        """
        if not self.profiling:
            raise InterpreterError(
                "per-block profiling is disabled (profile=False)")
        prof = self._profile_cache
        if prof is not None:
            return prof
        prof = Profile()
        for name, counts in self._counts.items():
            blocks = self._bc[name].blocks
            for block, count in zip(blocks, counts):
                if count == 0:
                    continue
                key = id(block)
                prof.block_counts[key] = \
                    prof.block_counts.get(key, 0) + count
                if key not in prof.block_sizes:
                    prof.block_sizes[key] = len(block.instructions)
                    histogram: dict[str, int] = {}
                    for inst in block.instructions:
                        histogram[inst.opcode] = \
                            histogram.get(inst.opcode, 0) + 1
                    prof.block_opcodes[key] = histogram
        self._profile_cache = prof
        return prof

    # -- compilation cache ---------------------------------------------------------
    def _compiled(self, name: str) -> BytecodeFunction:
        bc = self._bc.get(name)
        if bc is None:
            function = self.module.functions.get(name)
            if function is None or function.is_declaration():
                raise InterpreterError(f"call to unknown function @{name}")
            bc = compile_function(function)
            proto = [None] * bc.n_regs
            for slot, value in bc.literal_consts:
                proto[slot] = value
            for slot, gname in bc.global_consts:
                proto[slot] = Pointer(self.globals[gname], 0)
            self._bc[name] = bc
            self._protos[name] = proto
            self._counts[name] = \
                [0] * len(bc.blocks) if self.profiling else None
        return bc

    # -- execution -------------------------------------------------------------------
    def _dispatch_call(self, name: str, args: list):
        """Run a module-function call issued from inside a frame. The JIT
        tier overrides this to route hot callees to compiled code."""
        return self._run(self._bc.get(name) or self._compiled(name), args)

    def _run(self, bc: BytecodeFunction, args: list):
        if len(args) != len(bc.arg_slots):
            raise InterpreterError(
                f"@{bc.name} expects {len(bc.arg_slots)} args")
        regs = self._protos[bc.name].copy()
        for slot, value in zip(bc.arg_slots, args):
            regs[slot] = value
        counts = self._counts[bc.name]
        if counts is not None:
            counts[0] += 1
        steps = self.steps + 1
        self.steps = steps
        if steps > self.max_steps:
            raise InterpreterError(_BUDGET_MSG)
        return self._execute_from(bc, regs, [None] * bc.n_allocas, 0)

    def _resume(self, bc: BytecodeFunction, regs: list, allocas: list,
                block_index: int):
        """Re-enter a frame at a block boundary (JIT deopt path).

        ``regs``/``allocas`` carry the live frame state built by the
        caller; the edge into the target block — its profile count and
        step — has already been accounted, so execution continues as if
        the VM had taken that edge itself. Entering at a block start is
        always safe: phis emit no code (their slots were written by the
        incoming edge's move list).
        """
        return self._execute_from(bc, regs, allocas,
                                  bc.block_starts[block_index])

    def _execute_from(self, bc: BytecodeFunction, regs: list,
                      allocas: list, pc: int):
        counts = self._counts[bc.name]
        code = bc.code
        max_steps = self.max_steps
        steps = self.steps
        try:
            while True:
                inst = code[pc]
                op = inst[0]
                if op == OP_BIN:
                    regs[inst[1]] = inst[4](regs[inst[2]], regs[inst[3]])
                    pc += 1
                elif op == OP_LOADIDX:
                    p = regs[inst[2]]
                    regs[inst[1]] = p.buffer.data[
                        p.offset + regs[inst[3]] * inst[4] + inst[5]].item()
                    pc += 1
                elif op == OP_STOREIDX:
                    p = regs[inst[2]]
                    p.buffer.data[
                        p.offset + regs[inst[3]] * inst[4] + inst[5]
                    ] = regs[inst[1]]
                    pc += 1
                elif op == OP_BR:
                    pc, moves, bx = inst[2] if regs[inst[1]] else inst[3]
                    for d, s in moves:
                        regs[d] = regs[s]
                    if counts is not None:
                        counts[bx] += 1
                    steps += 1
                    if steps > max_steps:
                        raise InterpreterError(_BUDGET_MSG)
                elif op == OP_JMP:
                    pc, moves, bx = inst[1]
                    for d, s in moves:
                        regs[d] = regs[s]
                    if counts is not None:
                        counts[bx] += 1
                    steps += 1
                    if steps > max_steps:
                        raise InterpreterError(_BUDGET_MSG)
                elif op == OP_GEP:
                    p = regs[inst[2]]
                    offset = p.offset + inst[4]
                    for s, scale in inst[3]:
                        offset += regs[s] * scale
                    regs[inst[1]] = Pointer(p.buffer, offset)
                    pc += 1
                elif op == OP_LOAD:
                    p = regs[inst[2]]
                    regs[inst[1]] = p.buffer.data[p.offset].item()
                    pc += 1
                elif op == OP_STORE:
                    p = regs[inst[2]]
                    p.buffer.data[p.offset] = regs[inst[1]]
                    pc += 1
                elif op == OP_SELECT:
                    regs[inst[1]] = regs[inst[3]] if regs[inst[2]] \
                        else regs[inst[4]]
                    pc += 1
                elif op == OP_UN or op == OP_NAT1:
                    regs[inst[1]] = inst[3](regs[inst[2]])
                    pc += 1
                elif op == OP_NAT2:
                    regs[inst[1]] = inst[4](regs[inst[2]], regs[inst[3]])
                    pc += 1
                elif op == OP_RET:
                    s = inst[1]
                    return regs[s] if s >= 0 else None
                elif op == OP_ALLOCA:
                    buffer = allocas[inst[2]]
                    if buffer is None:
                        buffer = Buffer.for_type(inst[3], inst[4])
                        allocas[inst[2]] = buffer
                    regs[inst[1]] = Pointer(buffer, 0)
                    pc += 1
                elif op == OP_LOADN:
                    p = regs[inst[2]]
                    offset = p.offset + inst[4]
                    for s, scale in inst[3]:
                        offset += regs[s] * scale
                    regs[inst[1]] = p.buffer.data[offset].item()
                    pc += 1
                elif op == OP_STOREN:
                    p = regs[inst[2]]
                    offset = p.offset + inst[4]
                    for s, scale in inst[3]:
                        offset += regs[s] * scale
                    p.buffer.data[offset] = regs[inst[1]]
                    pc += 1
                elif op == OP_RAND:
                    if inst[1] >= 0:
                        regs[inst[1]] = self.rng.next()
                    else:
                        self.rng.next()
                    pc += 1
                elif op == OP_NATN:
                    regs[inst[1]] = inst[3](*[regs[s] for s in inst[2]])
                    pc += 1
                elif op == OP_CALL_API:
                    if self.api_runtime is None:
                        raise InterpreterError(
                            f"API call {inst[2]} with no runtime attached")
                    self.steps = steps
                    result = self.api_runtime.dispatch(
                        inst[2], [regs[s] for s in inst[3]], self)
                    steps = self.steps
                    if inst[1] >= 0:
                        regs[inst[1]] = result
                    pc += 1
                elif op == OP_CALL_FN:
                    self.steps = steps
                    result = self._dispatch_call(
                        inst[2], [regs[s] for s in inst[3]])
                    steps = self.steps
                    if inst[1] >= 0:
                        regs[inst[1]] = result
                    pc += 1
                else:  # OP_UNREACHABLE
                    raise InterpreterError("reached unreachable")
        except (IndexError, AttributeError) as exc:
            # Only translate faults raised by our own memory ops; anything
            # thrown inside a call handler propagates unchanged, as it does
            # in the reference engine.
            if code[pc][0] in _MEMORY_OPS:
                raise InterpreterError(
                    f"memory access fault in @{bc.name}: {exc}") from None
            raise
        finally:
            # On the exception path a nested call's frame may already have
            # written a larger total into self.steps than this frame's
            # last resync saw; never roll the global count backwards.
            if steps > self.steps:
                self.steps = steps
