"""Affine loop batching for the JIT tier: numpy kernels with deopt guards.

Recognizes innermost counted loops of the canonical two-block shape
(header: phis + icmp + conditional branch; body: straight-line code with
an unconditional latch) whose memory traffic is affine in the induction
variable and whose arithmetic is float elementwise work plus optional
float reductions. Each such loop gets a *kernel*: on entry the generated
code computes the trip count, materializes every access as a
``(array, start, stride)`` triple, and asks :func:`repro.runtime.jit
._vec_guard` whether batching is safe (bounds, no zero-stride store, no
partially-overlapping store). If yes, the whole loop runs as numpy slice
arithmetic — loads first, then stores in program order, then bit-exact
sequential reduction folds — and the block counts / step budget advance
by the batched trip count. If no, the code **deopts**: the live frame is
rebuilt as a register list and execution re-enters the register VM at the
loop header, which replays the loop scalar-exactly (including faults and
index wrapping).

Bit-identity notes: elementwise float64 numpy arithmetic rounds exactly
like the scalar Python operators; reductions are *not* reassociated — the
elementwise operand array is folded left-to-right through Python floats in
loop order; ``fdiv`` uses a vector twin of the scalar copysign(inf)
semantics; only ``sqrt``/``fabs`` natives are batched (their numpy
counterparts match the interpreter's safe variants).
"""

from __future__ import annotations

from ..ir.instructions import (
    BinaryOperator,
    BranchInst,
    CallInst,
    CastInst,
    GEPInst,
    ICmpInst,
    LoadInst,
    PhiInst,
    StoreInst,
)
from ..ir.values import ConstantFloat, ConstantInt, GlobalVariable
from .memory import scalar_count

_PRED_MAP = {"slt": "<", "ult": "<", "sle": "<=", "ule": "<=",
             "sgt": ">", "ugt": ">", "sge": ">=", "uge": ">="}
_SWAP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
_INVERT = {"<": ">=", "<=": ">", ">": "<=", ">=": "<"}

#: Below this trip count the kernel is skipped and the loop runs in the
#: specialized scalar code: guard + slice setup costs more than it saves
#: (NAS kernels are full of fixed 5-element inner loops).
MIN_KERNEL_TRIP = 4


class _Reject(Exception):
    """Loop shape outside the vectorizable subset; plan abandoned."""


class LoopPlan:
    """Everything needed to splice one loop's kernel into an entry edge."""

    __slots__ = ("header_index", "body_index", "loop_blocks", "trip_expr",
                 "setup_lines", "guard_expr", "body_lines", "deopt_lines")

    def __init__(self):
        self.setup_lines: list[str] = []
        #: (relative indent, text); indent 1 is inside the reduction fold.
        self.body_lines: list[tuple[int, str]] = []
        self.deopt_lines: list[str] = []


def build_loop_plans(spec) -> dict:
    """Map of header block index -> :class:`LoopPlan` for one function."""
    from ..analysis.loops import LoopInfo

    plans: dict[int, LoopPlan] = {}
    index_of = {id(b): i for i, b in enumerate(spec.bc.blocks)}
    try:
        info = LoopInfo(spec.function)
    except Exception:
        return plans
    for loop in info.loops:
        try:
            plan = _Planner(spec, loop, index_of).build()
        except _Reject:
            continue
        plans[plan.header_index] = plan
    return plans


def emit_kernel(spec, plan: LoopPlan, depth: int) -> None:
    """Splice the kernel-or-deopt sequence at a loop entry edge."""
    emit = spec.lines.append
    site = f"{spec.bc.name}:{plan.header_index}"
    emit((depth, f"_t = {plan.trip_expr}"))
    emit((depth, f"if _t >= {MIN_KERNEL_TRIP} "
                 f"and not vm.deopt_sites.get({site!r}):"))
    d1 = depth + 1
    for line in plan.setup_lines:
        emit((d1, line))
    emit((d1, f"if steps + _t * 2 <= max_steps and {plan.guard_expr}:"))
    d2 = d1 + 1
    for rel, line in plan.body_lines:
        emit((d2 + rel, line))
    if spec.profiling:
        emit((d2, f"counts[{plan.header_index}] += _t"))
        emit((d2, f"counts[{plan.body_index}] += _t"))
    emit((d2, "steps += _t * 2"))
    emit((d1, "else:"))
    d3 = d1 + 1
    emit((d3, f"vm.deopt_sites[{site!r}] = True"))
    for line in plan.deopt_lines:
        emit((d3, line))


# -- token arithmetic (fold to int literals when possible) -------------------

def _tok_int(tok: str):
    try:
        return int(tok)
    except ValueError:
        return None


def _tok_add(a: str, b: str) -> str:
    ia, ib = _tok_int(a), _tok_int(b)
    if ia is not None and ib is not None:
        return str(ia + ib)
    if ia == 0:
        return b
    if ib == 0:
        return a
    return f"({a}) + ({b})"


def _tok_sub(a: str, b: str) -> str:
    ia, ib = _tok_int(a), _tok_int(b)
    if ia is not None and ib is not None:
        return str(ia - ib)
    if ib == 0:
        return a
    return f"({a}) - ({b})"


def _tok_mul(a: str, b: str) -> str:
    ia, ib = _tok_int(a), _tok_int(b)
    if ia is not None and ib is not None:
        return str(ia * ib)
    if ia == 0 or ib == 0:
        return "0"
    if ia == 1:
        return b
    if ib == 1:
        return a
    return f"({a}) * ({b})"


class _Planner:
    """Builds one loop's plan, raising :class:`_Reject` on any obstacle."""

    def __init__(self, spec, loop, index_of):
        self.spec = spec
        self.loop = loop
        self.index_of = index_of
        self.plan = LoopPlan()
        self.vec_memo: dict[int, str] = {}
        self.aff_memo: dict[int, tuple[str, str] | None] = {}
        self.accesses: list[str] = []    # guard tuple fragments
        #: (relative indent, text) — gather bound checks nest a deopt.
        self.load_lines: list[tuple[int, str]] = []
        self.compute_lines: list[str] = []
        #: (data token, load_lines index) per strided load; if the same
        #: array is also stored, _assemble upgrades the view to a copy.
        self.slice_loads: list[tuple[str, int]] = []
        self.store_dtoks: set[str] = set()
        self.n_expr = 0
        self.n_gather = 0
        self.has_gather = False
        self.uses_kv = False
        self.global_slot = {g: s for s, g in spec.bc.global_consts}

    # -- entry ---------------------------------------------------------------
    def build(self) -> LoopPlan:
        loop, spec = self.loop, self.spec
        if len(loop.blocks) != 2:
            raise _Reject
        header = loop.header
        body = next(b for b in loop.blocks if b is not header)
        if len(loop.latches) != 1 or loop.latches[0] is not body:
            raise _Reject
        if len(body.predecessors()) != 1 or len(header.predecessors()) != 2:
            raise _Reject
        if any(True for _ in body.phis()):
            raise _Reject
        self.header, self.body = header, body

        non_phi = [i for i in header.instructions
                   if not isinstance(i, PhiInst)]
        if (len(non_phi) != 2 or not isinstance(non_phi[0], ICmpInst)
                or not isinstance(non_phi[1], BranchInst)):
            raise _Reject
        cmp_inst, br = non_phi
        if not br.is_conditional() or br.condition is not cmp_inst:
            raise _Reject
        then_b, else_b = br.targets()
        if then_b is body:
            body_on_true, exit_b = True, else_b
        elif else_b is body:
            body_on_true, exit_b = False, then_b
        else:
            raise _Reject
        if loop.contains_block(exit_b):
            raise _Reject
        term = body.terminator
        if (not isinstance(term, BranchInst) or term.is_conditional()
                or term.targets()[0] is not header):
            raise _Reject

        plan = self.plan
        plan.header_index = self.index_of[id(header)]
        plan.body_index = self.index_of[id(body)]
        plan.loop_blocks = {plan.header_index, plan.body_index}
        plan.deopt_lines = [
            "vm.deopt_count += 1",
            "vm.steps = steps",
            f"regs = [{', '.join(spec.names)}]",
            f"return vm._resume(vm._bc[{spec.bc.name!r}], regs, allocas, "
            f"{plan.header_index})",
        ]
        self._find_induction(cmp_inst, body_on_true)
        reductions = self._find_reductions()
        self._walk_body(reductions)
        self._assemble(reductions)
        return plan

    # -- skeleton ------------------------------------------------------------
    def _find_induction(self, cmp_inst: ICmpInst, body_on_true: bool):
        phi = self.loop.induction_phi()
        if phi is None:
            raise _Reject
        back = None
        for value, block in phi.incoming:
            if self.loop.contains_block(block):
                back = value
        if (not isinstance(back, BinaryOperator) or back.opcode != "add"
                or back.parent is not self.body):
            raise _Reject
        if back.lhs is phi and isinstance(back.rhs, ConstantInt):
            step = back.rhs.value
        elif back.rhs is phi and isinstance(back.lhs, ConstantInt):
            step = back.lhs.value
        else:
            raise _Reject
        if step == 0:
            raise _Reject

        if cmp_inst.lhs is phi:
            pred = _PRED_MAP.get(cmp_inst.predicate)
            bound = cmp_inst.rhs
        elif cmp_inst.rhs is phi:
            pred = _PRED_MAP.get(cmp_inst.predicate)
            pred = _SWAP.get(pred) if pred else None
            bound = cmp_inst.lhs
        else:
            raise _Reject
        if pred is None:
            raise _Reject
        if not body_on_true:
            pred = _INVERT[pred]
        if pred in ("<", "<=") and step < 0:
            raise _Reject
        if pred in (">", ">=") and step > 0:
            raise _Reject
        if not self._invariant(bound):
            raise _Reject

        self.ind_phi = phi
        self.step = step
        self.back_add = back
        i = self._tok(phi)
        n = self._tok(bound)
        if pred == "<":
            self.plan.trip_expr = f"(({n}) - ({i}) + ({step - 1})) // {step}"
        elif pred == "<=":
            self.plan.trip_expr = f"(({n}) - ({i})) // {step} + 1"
        elif pred == ">":
            self.plan.trip_expr = \
                f"(({n}) - ({i}) + ({step + 1})) // ({step})"
        else:  # >=
            self.plan.trip_expr = f"(({n}) - ({i})) // ({step}) + 1"

    def _find_reductions(self) -> list[tuple]:
        """[(phi slot token, "+"|"-", operand value, back inst)] — every
        header phi must be the induction or a float reduction."""
        reductions = []
        for phi in self.header.phis():
            if phi is self.ind_phi:
                continue
            if not phi.type.is_float():
                raise _Reject
            back = None
            for value, block in phi.incoming:
                if self.loop.contains_block(block):
                    back = value
            if (not isinstance(back, BinaryOperator)
                    or back.parent is not self.body
                    or back.opcode not in ("fadd", "fsub")):
                raise _Reject
            if back.opcode == "fadd":
                if back.lhs is phi:
                    operand = back.rhs
                elif back.rhs is phi:
                    operand = back.lhs
                else:
                    raise _Reject
            else:
                if back.lhs is not phi:
                    raise _Reject
                operand = back.rhs
            # The partial sum must feed only the phi, or a stale value
            # would be observable after the batched fold.
            if any(u.user is not phi for u in back.uses):
                raise _Reject
            op = "+" if back.opcode == "fadd" else "-"
            reductions.append((self._tok(phi), op, operand, back))
        return reductions

    # -- body scan -----------------------------------------------------------
    def _walk_body(self, reductions) -> None:
        skeleton = {id(self.back_add), id(self.body.terminator)}
        skeleton.update(id(r[3]) for r in reductions)
        self.stores: list[str] = []
        seen_store = False
        for inst in self.body.instructions:
            if id(inst) in skeleton:
                continue
            if isinstance(inst, LoadInst):
                if seen_store:
                    raise _Reject
                self._vec_load(inst)
            elif isinstance(inst, StoreInst):
                if self.has_gather:
                    # Gather loops stay read-only: a data-dependent index
                    # could alias any lattice, defeating the overlap guard.
                    raise _Reject
                if inst.value.type.is_float():
                    expr = self._vexpr(inst.value)
                elif inst.value.type.is_integer():
                    b, s = self._affine(inst.value)
                    if s == "0":
                        expr = f"({b})"
                    else:
                        self.uses_kv = True
                        expr = f"(({b}) + _kv * ({s}))"
                else:
                    raise _Reject
                _, k, dtok = self._access(inst.pointer, writes=True)
                self.compute_lines.append(
                    f"_vstore({dtok}, _b{k}, _s{k}, _t, {expr})")
                self.store_dtoks.add(dtok)
                seen_store = True
            elif isinstance(inst, GEPInst):
                for use in inst.uses:
                    u = use.user
                    if isinstance(u, LoadInst):
                        continue
                    if isinstance(u, StoreInst) and u.pointer is inst:
                        continue
                    if isinstance(u, GEPInst) and u.pointer is inst:
                        continue
                    raise _Reject
            elif isinstance(inst, BinaryOperator):
                if inst.type.is_float():
                    continue  # emitted on demand by _vexpr
                try:
                    self._affine(inst)
                except _Reject:
                    self._ivexpr(inst)  # must at least vectorize as a gather
            elif isinstance(inst, CastInst):
                if inst.opcode in ("sext", "zext", "sitofp",
                                   "fpext", "fptrunc"):
                    continue  # on demand
                raise _Reject
            elif isinstance(inst, CallInst):
                if inst.callee not in ("sqrt", "fabs"):
                    raise _Reject
            else:
                raise _Reject

    def _assemble(self, reductions) -> None:
        # _vslice returns a *view*; when the same array is also written
        # by this kernel, a later compute reading the view would see the
        # stored values instead of the pre-loop ones (the scalar loop
        # reads every load before any same-index store — the guard
        # admits only such lattices). Materialize those loads.
        for dtok, i in self.slice_loads:
            if dtok in self.store_dtoks:
                rel, line = self.load_lines[i]
                self.load_lines[i] = (rel, line + ".copy()")
        body = self.plan.body_lines
        body.extend(self.load_lines)
        body.extend((0, line) for line in self.compute_lines)
        self.compute_lines.clear()
        for rtok, op, operand, _back in reductions:
            expr = self._vexpr(operand)
            # _vexpr may have appended CSE lines for the operand.
            body.extend((0, line) for line in self.compute_lines)
            self.compute_lines.clear()
            body.append((0, f"_acc = {rtok}"))
            body.append((0, f"for _x in np.broadcast_to(np.asarray({expr}),"
                            " (_t,)).tolist():"))
            body.append((1, f"_acc = _acc {op} _x"))
            body.append((0, f"{rtok} = _acc"))
        itok = self._tok(self.ind_phi)
        body.append((0, f"{itok} = {itok} + _t * ({self.step})"))
        # Prepended last: vectorizing the reduction operands above may be
        # the first thing that sets uses_kv (e.g. sitofp of an
        # induction-affine value), so the decision cannot be made before
        # every expression has been emitted.
        if self.uses_kv:
            body.insert(0, (0, "_kv = np.arange(_t, dtype=np.int64)"))
        self.plan.guard_expr = \
            f"_vec_guard(({', '.join(self.accesses)},), _t)"

    # -- value classification ------------------------------------------------
    def _invariant(self, value) -> bool:
        from ..ir.instructions import Instruction
        if not isinstance(value, Instruction):
            return True
        return value.parent is not self.header \
            and value.parent is not self.body

    def _tok(self, value) -> str:
        """Scalar source token for an invariant value or a header phi."""
        from .jit import _literal_token
        if isinstance(value, (ConstantInt, ConstantFloat)):
            return _literal_token(value.value)
        slot = self.spec.bc.value_slots.get(id(value))
        if slot is None:
            raise _Reject
        return self.spec.names[slot]

    def _affine(self, value):
        """(base token, stride token) if linear in the induction phi."""
        memo = self.aff_memo
        if id(value) in memo:
            result = memo[id(value)]
            if result is None:
                raise _Reject
            return result
        memo[id(value)] = None  # cycle guard
        result = self._affine_inner(value)
        memo[id(value)] = result
        return result

    def _affine_inner(self, value):
        if value is self.ind_phi:
            return self._tok(value), str(self.step)
        if isinstance(value, ConstantInt):
            return str(value.value), "0"
        if self._invariant(value):
            return self._tok(value), "0"
        if isinstance(value, CastInst) and value.opcode in ("sext", "zext"):
            return self._affine(value.value)
        if isinstance(value, BinaryOperator):
            if value.opcode == "add":
                a = self._affine(value.lhs)
                b = self._affine(value.rhs)
                return _tok_add(a[0], b[0]), _tok_add(a[1], b[1])
            if value.opcode == "sub":
                a = self._affine(value.lhs)
                b = self._affine(value.rhs)
                return _tok_sub(a[0], b[0]), _tok_sub(a[1], b[1])
            if value.opcode == "mul":
                a = self._affine(value.lhs)
                b = self._affine(value.rhs)
                if b[1] == "0":
                    return _tok_mul(a[0], b[0]), _tok_mul(a[1], b[0])
                if a[1] == "0":
                    return _tok_mul(a[0], b[0]), _tok_mul(b[1], a[0])
        raise _Reject

    # -- memory --------------------------------------------------------------
    def _gep_parts(self, gep: GEPInst):
        ty = gep.pointer.type
        scales = [scalar_count(ty.pointee)]
        current = ty.pointee
        for _ in gep.indices[1:]:
            current = current.element
            scales.append(scalar_count(current))
        return list(zip(gep.indices, scales))

    def _access(self, pointer, writes: bool) -> tuple:
        """Register one access. Returns ``("s", index, data token)`` for a
        strided lattice or ``("g", index expr, data token)`` for a gather
        (loads only: any affine component folds into start/stride, the
        data-dependent remainder becomes a fancy-index vector)."""
        start, stride = "0", "0"
        vec_parts: list[tuple[str, int]] = []
        cur = pointer
        while isinstance(cur, GEPInst) and not self._invariant(cur):
            for index, scale in self._gep_parts(cur):
                try:
                    b, s = self._affine(index)
                except _Reject:
                    if writes:
                        raise
                    vec_parts.append((self._ivexpr(index), scale))
                    continue
                start = _tok_add(start, _tok_mul(b, str(scale)))
                stride = _tok_add(stride, _tok_mul(s, str(scale)))
            cur = cur.pointer
        if isinstance(cur, GlobalVariable):
            slot = self.global_slot.get(cur.name)
        else:
            if not self._invariant(cur):
                raise _Reject
            slot = self.spec.bc.value_slots.get(id(cur))
        if slot is None:
            raise _Reject
        dtok, otok = self.spec._data_tok(slot)
        if otok:
            start = _tok_add(otok, start)
        if not vec_parts:
            k = len(self.accesses)
            self.plan.setup_lines.append(f"_b{k} = {start}")
            self.plan.setup_lines.append(f"_s{k} = {stride}")
            self.accesses.append(f"({dtok}, _b{k}, _s{k}, {int(writes)})")
            return "s", k, dtok
        parts = []
        if stride != "0":
            self.uses_kv = True
            parts.append(f"(({start}) + _kv * ({stride}))")
        elif start != "0":
            parts.append(f"({start})")
        for ivtok, scale in vec_parts:
            parts.append(ivtok if scale == 1 else f"({ivtok}) * {scale}")
        return "g", " + ".join(parts), dtok

    def _vec_load(self, inst: LoadInst) -> str:
        tok = self.vec_memo.get(id(inst))
        if tok is not None:
            return tok
        kind = self._access(inst.pointer, writes=False)
        if kind[0] == "s":
            _, k, dtok = kind
            tok = f"_v{k}"
            self.slice_loads.append((dtok, len(self.load_lines)))
            self.load_lines.append(
                (0, f"{tok} = _vslice({dtok}, _b{k}, _s{k}, _t)"))
        else:
            # Gather: bounds are data, not a closed form — check the
            # realized index vector and deopt so the VM reproduces the
            # scalar semantics (negative wrap, or fault) exactly. The
            # site is NOT blacklisted: the indices may be fine on the
            # next entry.
            _, idx_expr, dtok = kind
            g = self.n_gather
            self.n_gather += 1
            self.has_gather = True
            tok = f"_gv{g}"
            self.load_lines.append((0, f"_gi{g} = {idx_expr}"))
            self.load_lines.append(
                (0, f"if int(_gi{g}.min()) < 0 "
                    f"or int(_gi{g}.max()) >= {dtok}.size:"))
            for line in self.plan.deopt_lines:
                self.load_lines.append((1, line))
            self.load_lines.append((0, f"{tok} = {dtok}[_gi{g}]"))
        self.vec_memo[id(inst)] = tok
        return tok

    def _ivexpr(self, value) -> str:
        """Integer *vector* expression (numpy int64) for a non-affine
        index term, e.g. ``col[j]`` or ``i * i``. Every successful result
        contains at least one vectorized load or the product of two
        induction-varying terms, so it is always an ndarray."""
        try:
            b, s = self._affine(value)
        except _Reject:
            pass
        else:
            if s == "0":
                return f"({b})"
            self.uses_kv = True
            return f"(({b}) + _kv * ({s}))"
        if isinstance(value, LoadInst):
            if not value.type.is_integer():
                raise _Reject
            return self._vec_load(value)
        if isinstance(value, CastInst) and value.opcode in ("sext", "zext"):
            return self._ivexpr(value.value)
        if isinstance(value, BinaryOperator) and value.type.is_integer() \
                and value.opcode in ("add", "sub", "mul"):
            a = self._ivexpr(value.lhs)
            b = self._ivexpr(value.rhs)
            op = {"add": "+", "sub": "-", "mul": "*"}[value.opcode]
            return f"({a} {op} {b})"
        raise _Reject

    # -- elementwise expressions ---------------------------------------------
    def _vexpr(self, value) -> str:
        tok = self.vec_memo.get(id(value))
        if tok is not None:
            return tok
        if isinstance(value, (ConstantInt, ConstantFloat)) \
                or self._invariant(value):
            return self._tok(value)
        if isinstance(value, LoadInst):
            return self._vec_load(value)
        if isinstance(value, BinaryOperator) and value.type.is_float():
            a = self._vexpr(value.lhs)
            b = self._vexpr(value.rhs)
            if value.opcode == "fadd":
                expr = f"{a} + {b}"
            elif value.opcode == "fsub":
                expr = f"{a} - {b}"
            elif value.opcode == "fmul":
                expr = f"{a} * {b}"
            elif value.opcode == "fdiv":
                expr = f"_vfdiv({a}, {b})"
            else:
                raise _Reject
            return self._cse(value, expr)
        if isinstance(value, CallInst) and value.callee == "sqrt":
            return self._cse(value, f"_vsqrt({self._vexpr(value.args[0])})")
        if isinstance(value, CallInst) and value.callee == "fabs":
            return self._cse(value, f"np.abs({self._vexpr(value.args[0])})")
        if isinstance(value, CastInst):
            if value.opcode == "sitofp":
                try:
                    base, step = self._affine(value.value)
                except _Reject:
                    inner = self._ivexpr(value.value)
                    return self._cse(value, f"np.asarray({inner})"
                                            ".astype(np.float64)")
                if step == "0":
                    return self._cse(value, f"float({base})")
                self.uses_kv = True
                return self._cse(value, f"(({base}) + _kv * ({step}))"
                                        ".astype(np.float64)")
            if value.opcode in ("fpext", "fptrunc", "sext", "zext"):
                return self._vexpr(value.value)
        raise _Reject

    def _cse(self, value, expr: str) -> str:
        tok = f"_e{self.n_expr}"
        self.n_expr += 1
        self.compute_lines.append(f"{tok} = {expr}")
        self.vec_memo[id(value)] = tok
        return tok
