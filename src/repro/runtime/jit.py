"""JIT tier: specialized-Python compilation of hot functions.

Third execution tier above the reference interpreter and the register VM.
When a function crosses the hotness threshold (policy in
:mod:`repro.runtime.profile`), its bytecode is walked once and turned into
*specialized Python source*: register slots become local variables,
PC-resolved branches become real ``while``/``if`` control flow, phi edge
move-lists collapse to tuple assignments, and constants / GEP scales are
folded into the text. CPython then executes whole basic blocks per
dispatch instead of one instruction tuple each.

On top of the scalar specialization, innermost counted loops whose bodies
are affine array traversals are batched into vectorized numpy kernels. A
runtime guard checks bounds, aliasing and stride preconditions on every
loop entry; on failure the generated code *deopts*: it materializes the
live frame (register list + allocas) and re-enters the register VM at the
loop header via :meth:`VirtualMachine._resume`, keeping the VM as the
always-correct fallback tier.

Observability contract: the generated code increments the same dense
per-block count arrays the VM uses (one increment per taken CFG edge; a
kernel adds its batched trip count), charges the same step budget, and
returns bit-identical results — profiles and outputs are indistinguishable
across ``reference``/``vm``/``jit``.
"""

from __future__ import annotations

import math
import operator

import numpy as np

from ..errors import InterpreterError
from ..reliability import faults
from .bytecode import (
    BIN_FNS,
    FCMP_FNS,
    OP_ALLOCA,
    OP_BIN,
    OP_BR,
    OP_CALL_API,
    OP_CALL_FN,
    OP_GEP,
    OP_JMP,
    OP_LOAD,
    OP_LOADIDX,
    OP_LOADN,
    OP_NAT1,
    OP_NAT2,
    OP_NATN,
    OP_RAND,
    OP_RET,
    OP_SELECT,
    OP_STORE,
    OP_STOREIDX,
    OP_STOREN,
    OP_UN,
    OP_UNREACHABLE,
    _fdiv,
    _frem,
    _NATIVE_FNS,
    _sdiv,
    _srem,
    BytecodeFunction,
)
from .memory import Buffer, Pointer
from .profile import GLOBAL_CODE_CACHE, HotnessTracker, jit_fingerprint
from .vm import _BUDGET_MSG, VirtualMachine

# ---------------------------------------------------------------------------
# Reverse operator maps: bound callable -> source text
# ---------------------------------------------------------------------------

#: Callables whose semantics are exactly a Python infix operator. The
#: ordered fcmp predicates (except ``one``) belong here: Python comparisons
#: on NaN yield False, which is precisely their on-NaN result.
_INLINE_BIN = {
    id(operator.add): "+", id(operator.sub): "-", id(operator.mul): "*",
    id(operator.and_): "&", id(operator.or_): "|", id(operator.xor): "^",
    id(operator.lshift): "<<", id(operator.rshift): ">>",
    id(operator.eq): "==", id(operator.ne): "!=",
    id(operator.lt): "<", id(operator.le): "<=",
    id(operator.gt): ">", id(operator.ge): ">=",
}
for _pred, _sym in (("oeq", "=="), ("olt", "<"), ("ole", "<="),
                    ("ogt", ">"), ("oge", ">=")):
    _INLINE_BIN[id(FCMP_FNS[_pred])] = _sym

_LSHR = BIN_FNS["lshr"]


def _csinf(a):
    return math.copysign(math.inf, a)


# -- numpy kernel runtime helpers -------------------------------------------

def _vslice(d, start, step, n):
    """``n`` elements of flat array ``d`` starting at ``start`` with stride
    ``step``; a zero stride broadcasts the single element (read-only)."""
    if step == 0:
        return np.broadcast_to(d[start], (n,))
    stop = start + step * n
    if step > 0:
        return d[start:stop:step]
    return d[start:stop if stop >= 0 else None:step]


def _vstore(d, start, step, n, rhs):
    stop = start + step * n
    if step > 0:
        d[start:stop:step] = rhs
    else:
        d[start:stop if stop >= 0 else None:step] = rhs


def _vfdiv(a, b):
    """Vector twin of bytecode._fdiv: x/0 yields copysign(inf, x)."""
    with np.errstate(divide="ignore", invalid="ignore"):
        q = np.true_divide(a, b)
        return np.where(b == 0, np.copysign(np.inf, a), q)


def _vsqrt(a):
    """Vector twin of the interpreter's _safe_sqrt (negative -> nan)."""
    with np.errstate(invalid="ignore"):
        return np.sqrt(a)


def _ranges_disjoint(a0, sa, b0, sb, n):
    """May two strided index sets of length ``n`` share an element?  False
    negatives are safe (they deopt); False positives are not."""
    a_lo = min(a0, a0 + sa * (n - 1))
    a_hi = max(a0, a0 + sa * (n - 1))
    b_lo = min(b0, b0 + sb * (n - 1))
    b_hi = max(b0, b0 + sb * (n - 1))
    if a_hi < b_lo or b_hi < a_lo:
        return True
    if sa == sb and sa != 0 and (a0 - b0) % sa != 0:
        return True
    return False


def _vec_guard(accesses, n):
    """All preconditions for running a batched kernel of ``n`` iterations.

    ``accesses`` is a tuple of ``(flat array, start, stride, writes)``.
    Checks, in order: every touched index in bounds (the VM's scalar loads
    wrap on negatives and fault past the end — both must deopt), no
    zero-stride store, and for every store/other pair on the same array:
    identical index lattices are fine (the kernel preserves program order
    there), a load whose equal-stride lattice runs strictly *ahead* of the
    store is fine (iteration k reads indices no earlier iteration wrote,
    so both orders observe pre-loop values), anything else must be
    range-disjoint.
    """
    for d, start, stride, _w in accesses:
        lo = min(start, start + stride * (n - 1))
        hi = max(start, start + stride * (n - 1))
        if lo < 0 or hi >= d.size:
            return False
    for i, (d, start, stride, writes) in enumerate(accesses):
        if not writes:
            continue
        if stride == 0:
            return False
        for j, (d2, start2, stride2, w2) in enumerate(accesses):
            if j == i or d2 is not d:
                continue
            if start2 == start and stride2 == stride:
                continue
            if stride2 == stride:
                delta = start2 - start
                if delta % stride != 0:
                    continue    # interleaved lattices never collide
                if not w2 and delta // stride > 0:
                    continue    # reads stay ahead of the writes
            if not _ranges_disjoint(start, stride, start2, stride2, n):
                return False
    return True


#: Names under which non-inlinable callables appear in generated source.
_CALL_NAMES = {id(_sdiv): "_sdiv", id(_srem): "_srem", id(_frem): "_frem"}

#: Execution namespace shared by every generated module (read-only).
_STATIC_NS = {
    "InterpreterError": InterpreterError, "_BUDGET_MSG": _BUDGET_MSG,
    "Pointer": Pointer, "Buffer": Buffer, "np": np,
    "NAN": math.nan, "INF": math.inf,
    "_sdiv": _sdiv, "_srem": _srem, "_frem": _frem, "_csinf": _csinf,
    "_vslice": _vslice, "_vstore": _vstore, "_vfdiv": _vfdiv,
    "_vsqrt": _vsqrt, "_vec_guard": _vec_guard,
}
for _pred, _fn in FCMP_FNS.items():
    if id(_fn) not in _INLINE_BIN:
        _CALL_NAMES[id(_fn)] = f"fcmp_{_pred}"
        _STATIC_NS[f"fcmp_{_pred}"] = _fn
for _name, _fn in _NATIVE_FNS.items():
    if id(_fn) not in _CALL_NAMES:
        _CALL_NAMES[id(_fn)] = f"nat_{_name}"
        _STATIC_NS[f"nat_{_name}"] = _fn


def _literal_token(value) -> str:
    """Source text for a folded constant (round-trips bit-exactly)."""
    if value is None:
        return "None"
    if isinstance(value, float):
        if math.isnan(value):
            return "NAN"
        if math.isinf(value):
            return "INF" if value > 0 else "(-INF)"
        r = repr(value)
        return f"({r})" if r.startswith("-") else r
    return f"({value!r})" if value < 0 else repr(value)


# ---------------------------------------------------------------------------
# The specializer: one bytecode function -> Python source text
# ---------------------------------------------------------------------------

class _Unsupported(Exception):
    """Raised during codegen for shapes the specializer does not handle;
    the caller falls back to the VM for this function permanently."""


class _Specializer:
    """Emits ``def _jitfn(vm, args)`` source for one bytecode function.

    Dispatch structure: an outer ``while True`` over a block index ``bx``
    with one ``if bx == N`` arm per *join* block; single-predecessor blocks
    are inlined into their predecessor's arm (superblock formation), and a
    back edge to the arm's own root becomes an inner ``while True``. Arms
    are ordered hottest-first using the VM's per-block counts when warm,
    else by static loop depth.
    """

    def __init__(self, function, bc: BytecodeFunction, vm: VirtualMachine,
                 vectorize: bool = True):
        self.function = function
        self.bc = bc
        self.vm = vm
        self.vectorize = vectorize
        self.profiling = vm.profiling
        n = len(bc.blocks)
        starts = bc.block_starts
        ends = list(starts[1:]) + [len(bc.code)]
        self.block_code = [bc.code[starts[i]:ends[i]] for i in range(n)]
        self.block_edges: list[list] = []
        for i in range(n):
            term = self.block_code[i][-1]
            if term[0] == OP_BR:
                self.block_edges.append([term[2], term[3]])
            elif term[0] == OP_JMP:
                self.block_edges.append([term[1]])
            else:
                self.block_edges.append([])
        # Register name tokens: literals fold into the text.
        self.names = [f"r{s}" for s in range(bc.n_regs)]
        for slot, value in bc.literal_consts:
            self.names[slot] = _literal_token(value)
        self.global_slots = {slot: gname
                             for slot, gname in bc.global_consts}
        # Slots whose pointee array is stable for the whole frame (args,
        # globals, alloca results): memory ops through them read a cached
        # ``d<slot>`` flat array instead of ``r.buffer.data``.
        self.stable = set(bc.arg_slots) | set(self.global_slots)
        self.arg_base = set(bc.arg_slots)
        for inst in bc.code:
            if inst[0] == OP_ALLOCA:
                self.stable.add(inst[1])
        self.used_bases: set[int] = set()
        self.uses_rand = any(inst[0] == OP_RAND for inst in bc.code)
        self.atypes = {}
        for inst in bc.code:
            if inst[0] == OP_ALLOCA:
                self.atypes[inst[2]] = inst[4]
        self.lines: list[tuple[int, str]] = []
        self.plans: dict[int, object] = {}   # header block index -> plan
        if vectorize:
            self._build_plans()

    def _build_plans(self) -> None:
        """Populated by the vectorizer (separate section below)."""
        from .jit_vectorize import build_loop_plans
        self.plans = build_loop_plans(self)

    # -- small emission helpers --------------------------------------------
    def _use_base(self, slot: int) -> None:
        self.used_bases.add(slot)

    def _data_tok(self, p: int) -> tuple[str, str]:
        """(flat-array text, base-offset text) for pointer slot ``p``."""
        if p in self.stable:
            self._use_base(p)
            if p in self.arg_base:
                return f"d{p}", f"o{p}"
            return f"d{p}", ""
        t = self.names[p]
        return f"{t}.buffer.data", f"{t}.offset"

    def _addr(self, base_off: str, pairs, add: int) -> str:
        parts = [base_off] if base_off else []
        for s, scale in pairs:
            t = self.names[s]
            parts.append(t if scale == 1 else f"{t} * {scale}")
        if add or not parts:
            parts.append(str(add))
        return " + ".join(parts)

    def _bin_expr(self, fn, a: str, b: str) -> str:
        sym = _INLINE_BIN.get(id(fn))
        if sym is not None:
            return f"{a} {sym} {b}"
        if fn is _fdiv:
            return f"{a} / {b} if {b} != 0 else _csinf({a})"
        if fn is _LSHR:
            return f"(({a}) & 0xFFFFFFFFFFFFFFFF) >> ({b})"
        name = _CALL_NAMES.get(id(fn))
        if name is None:
            raise _Unsupported(f"no source form for {fn!r}")
        return f"{name}({a}, {b})"

    # -- structure ----------------------------------------------------------
    def _in_edges(self) -> list[int]:
        counts = [0] * len(self.bc.blocks)
        counts[0] += 1
        for edges in self.block_edges:
            for _pc, _moves, t in edges:
                counts[t] += 1
        return counts

    def _arm_order(self, roots: list[int]) -> list[int]:
        dyn = self.vm._counts.get(self.bc.name)
        if dyn is not None and any(dyn):
            return sorted(roots, key=lambda b: (-dyn[b], b))
        from ..analysis.loops import LoopInfo
        info = LoopInfo(self.function)
        depth = {}
        for i, block in enumerate(self.bc.blocks):
            loop = info.loop_of_block(block)
            depth[i] = loop.depth if loop is not None else 0
        return sorted(roots, key=lambda b: (-depth[b], b))

    def _inline_closure(self, root: int, inlinable: list[bool]) -> set:
        seen = {root}
        stack = [root]
        while stack:
            b = stack.pop()
            for _pc, _moves, t in self.block_edges[b]:
                if inlinable[t] and t not in seen:
                    seen.add(t)
                    stack.append(t)
        return seen

    # -- top level -----------------------------------------------------------
    def generate(self) -> str:
        bc = self.bc
        in_edges = self._in_edges()
        inlinable = [n == 1 and i != 0 for i, n in enumerate(in_edges)]
        roots = [i for i in range(len(bc.blocks)) if not inlinable[i]]

        body: list[tuple[int, str]] = []
        self.lines = body
        first = True
        for root in self._arm_order(roots):
            closure = self._inline_closure(root, inlinable)
            wrapper = any(t == root
                          for b in closure
                          for _pc, _m, t in self.block_edges[b])
            kw = "if" if first else "elif"
            first = False
            body.append((3, f"{kw} bx == {root}:"))
            depth = 5 if wrapper else 4
            if wrapper:
                body.append((4, "while True:"))
            self._emit_block(root, root, wrapper, depth, {root})
            if wrapper:
                body.append((4, "continue"))
        body.append((3, "else:"))
        body.append((4, "raise InterpreterError('jit dispatch corrupted "
                        f"in @{bc.name}')"))

        # Preamble is assembled last: it depends on which caches are used.
        pre: list[tuple[int, str]] = []
        name = bc.name
        pre.append((0, f"def _jitfn(vm, args):"))
        pre.append((1, f"if len(args) != {len(bc.arg_slots)}:"))
        pre.append((2, f"raise InterpreterError('@{name} expects "
                       f"{len(bc.arg_slots)} args')"))
        if self.global_slots:
            pre.append((1, "vm_globals = vm.globals"))
        if self.profiling:
            pre.append((1, f"counts = vm._counts[{name!r}]"))
        pre.append((1, "max_steps = vm.max_steps"))
        pre.append((1, "steps = vm.steps + 1"))
        pre.append((1, "try:"))
        if self.profiling:
            pre.append((2, "counts[0] += 1"))
        pre.append((2, "if steps > max_steps:"))
        pre.append((3, "raise InterpreterError(_BUDGET_MSG)"))
        for i, slot in enumerate(bc.arg_slots):
            pre.append((2, f"r{slot} = args[{i}]"))
        for slot, gname in sorted(self.global_slots.items()):
            pre.append((2, f"r{slot} = Pointer(vm_globals[{gname!r}], 0)"))
        for slot in sorted(self.used_bases):
            if slot in self.global_slots:
                pre.append((2, f"d{slot} = r{slot}.buffer.data"))
            elif slot in self.arg_base:
                # Null-tolerant: a pointer arg may be None on paths that
                # never dereference it; fault only at an actual access.
                pre.append((2, f"d{slot} = r{slot}.buffer.data "
                              f"if r{slot} is not None else None"))
                pre.append((2, f"o{slot} = r{slot}.offset "
                              f"if r{slot} is not None else 0"))
            # alloca bases bind d<slot> at their OP_ALLOCA site
        uninit = [s for s in range(bc.n_regs)
                  if self.names[s] == f"r{s}"
                  and s not in self.arg_base and s not in self.global_slots]
        for chunk_start in range(0, len(uninit), 12):
            chunk = uninit[chunk_start:chunk_start + 12]
            pre.append((2, " = ".join(f"r{s}" for s in chunk) + " = None"))
        pre.append((2, f"allocas = [None] * {bc.n_allocas}"))
        if self.uses_rand:
            pre.append((2, "rng_next = vm.rng.next"))
        pre.append((2, "bx = 0"))
        pre.append((2, "while True:"))

        post: list[tuple[int, str]] = [
            (1, "except InterpreterError:"),
            (2, "raise"),
            (1, "except (IndexError, AttributeError) as exc:"),
            (2, f"raise InterpreterError('memory access fault in @{name}: '"
                " + str(exc)) from None"),
            (1, "finally:"),
            (2, "if steps > vm.steps:"),
            (3, "vm.steps = steps"),
        ]
        out = [("    " * d) + t for d, t in pre + body + post]
        return "\n".join(out) + "\n"

    # -- blocks and edges ----------------------------------------------------
    def _emit_block(self, b: int, root: int, wrapper: bool, depth: int,
                    path: set) -> None:
        code = self.block_code[b]
        for inst in code[:-1]:
            self._emit_inst(inst, depth)
        term = code[-1]
        op = term[0]
        if op == OP_RET:
            s = term[1]
            self.lines.append(
                (depth, f"return {self.names[s]}" if s >= 0 else
                 "return None"))
        elif op == OP_JMP:
            self._emit_edge(term[1], b, root, wrapper, depth, path)
        elif op == OP_BR:
            self.lines.append((depth, f"if {self.names[term[1]]}:"))
            self._emit_edge(term[2], b, root, wrapper, depth + 1, path)
            self.lines.append((depth, "else:"))
            self._emit_edge(term[3], b, root, wrapper, depth + 1, path)
        elif op == OP_UNREACHABLE:
            self.lines.append(
                (depth, "raise InterpreterError('reached unreachable')"))
        else:
            self._emit_inst(term, depth)
            raise _Unsupported(f"block {b} has no terminator")

    def _emit_edge(self, edge, src: int, root: int, wrapper: bool,
                   depth: int, path: set) -> None:
        _pc, moves, t = edge
        emit = self.lines.append
        if moves:
            env: dict[int, int] = {}
            for d, s in moves:
                env[d] = env.get(s, s)
            dests = ", ".join(f"r{d}" for d in env)
            srcs = ", ".join(self.names[s] for s in env.values())
            emit((depth, f"{dests} = {srcs}"))
        if self.profiling:
            emit((depth, f"counts[{t}] += 1"))
        emit((depth, "steps += 1"))
        emit((depth, "if steps > max_steps:"))
        emit((depth + 1, "raise InterpreterError(_BUDGET_MSG)"))
        plan = self.plans.get(t)
        if plan is not None and src not in plan.loop_blocks:
            from .jit_vectorize import emit_kernel
            emit_kernel(self, plan, depth)
        if t == root:
            emit((depth, "continue"))
        elif t in path or not self._inlinable_cache[t]:
            emit((depth, f"bx = {t}"))
            emit((depth, "break" if wrapper else "continue"))
        else:
            self._emit_block(t, root, wrapper, depth, path | {t})

    @property
    def _inlinable_cache(self) -> list[bool]:
        cached = getattr(self, "_inl", None)
        if cached is None:
            in_edges = self._in_edges()
            cached = [n == 1 and i != 0 for i, n in enumerate(in_edges)]
            self._inl = cached
        return cached

    # -- instructions --------------------------------------------------------
    def _emit_inst(self, inst, depth: int) -> None:
        emit = self.lines.append
        names = self.names
        op = inst[0]
        if op == OP_BIN:
            emit((depth, f"r{inst[1]} = "
                  f"{self._bin_expr(inst[4], names[inst[2]], names[inst[3]])}"))
        elif op == OP_LOADIDX:
            d, off = self._data_tok(inst[2])
            addr = self._addr(off, ((inst[3], inst[4]),), inst[5])
            emit((depth, f"r{inst[1]} = {d}[{addr}].item()"))
        elif op == OP_STOREIDX:
            d, off = self._data_tok(inst[2])
            addr = self._addr(off, ((inst[3], inst[4]),), inst[5])
            emit((depth, f"{d}[{addr}] = {names[inst[1]]}"))
        elif op == OP_LOADN:
            d, off = self._data_tok(inst[2])
            addr = self._addr(off, inst[3], inst[4])
            emit((depth, f"r{inst[1]} = {d}[{addr}].item()"))
        elif op == OP_STOREN:
            d, off = self._data_tok(inst[2])
            addr = self._addr(off, inst[3], inst[4])
            emit((depth, f"{d}[{addr}] = {names[inst[1]]}"))
        elif op == OP_LOAD:
            d, off = self._data_tok(inst[2])
            addr = off or "0"
            emit((depth, f"r{inst[1]} = {d}[{addr}].item()"))
        elif op == OP_STORE:
            d, off = self._data_tok(inst[2])
            addr = off or "0"
            emit((depth, f"{d}[{addr}] = {names[inst[1]]}"))
        elif op == OP_GEP:
            p = inst[2]
            base = names[p]
            if p in self.stable and p not in self.arg_base:
                addr = self._addr("", inst[3], inst[4])
            else:
                addr = self._addr(f"{base}.offset", inst[3], inst[4])
            emit((depth, f"r{inst[1]} = Pointer({base}.buffer, {addr})"))
        elif op == OP_SELECT:
            emit((depth, f"r{inst[1]} = {names[inst[3]]} "
                  f"if {names[inst[2]]} else {names[inst[4]]}"))
        elif op == OP_UN:
            self._emit_cast(inst, depth)
        elif op == OP_NAT1:
            fn = _CALL_NAMES.get(id(inst[3]))
            if fn is None:
                raise _Unsupported("unknown native")
            emit((depth, f"r{inst[1]} = {fn}({names[inst[2]]})"))
        elif op == OP_NAT2:
            fn = _CALL_NAMES.get(id(inst[4]))
            if fn is None:
                raise _Unsupported("unknown native")
            emit((depth, f"r{inst[1]} = "
                  f"{fn}({names[inst[2]]}, {names[inst[3]]})"))
        elif op == OP_NATN:
            fn = _CALL_NAMES.get(id(inst[3]))
            if fn is None:
                raise _Unsupported("unknown native")
            args = ", ".join(names[s] for s in inst[2])
            emit((depth, f"r{inst[1]} = {fn}({args})"))
        elif op == OP_RAND:
            if inst[1] >= 0:
                emit((depth, f"r{inst[1]} = rng_next()"))
            else:
                emit((depth, "rng_next()"))
        elif op == OP_ALLOCA:
            k, aname = inst[2], inst[3]
            emit((depth, f"_ab = allocas[{k}]"))
            emit((depth, "if _ab is None:"))
            emit((depth + 1,
                  f"_ab = Buffer.for_type({aname!r}, ATYPES[{k}])"))
            emit((depth + 1, f"allocas[{k}] = _ab"))
            emit((depth, f"r{inst[1]} = Pointer(_ab, 0)"))
            # Bind the stable-base array cache here, unconditionally: any
            # later block or kernel may consult d<slot>.
            emit((depth, f"d{inst[1]} = _ab.data"))
            self.used_bases.discard(inst[1])
        elif op == OP_CALL_API:
            cn, slots = inst[2], inst[3]
            emit((depth, "if vm.api_runtime is None:"))
            emit((depth + 1, f"raise InterpreterError('API call {cn} "
                  "with no runtime attached')"))
            args = ", ".join(names[s] for s in slots)
            emit((depth, "vm.steps = steps"))
            target = f"r{inst[1]}" if inst[1] >= 0 else "_r"
            emit((depth, f"{target} = vm.api_runtime.dispatch("
                  f"{cn!r}, [{args}], vm)"))
            emit((depth, "steps = vm.steps"))
        elif op == OP_CALL_FN:
            fname, slots = inst[2], inst[3]
            args = ", ".join(names[s] for s in slots)
            emit((depth, "vm.steps = steps"))
            target = f"r{inst[1]}" if inst[1] >= 0 else "_r"
            emit((depth,
                  f"{target} = vm._dispatch_call({fname!r}, [{args}])"))
            emit((depth, "steps = vm.steps"))
        else:
            raise _Unsupported(f"opcode {op}")

    def _emit_cast(self, inst, depth: int) -> None:
        fn = inst[3]
        a = self.names[inst[2]]
        d = inst[1]
        emit = self.lines.append
        if fn is int:
            emit((depth, f"r{d} = int({a})"))
        elif fn is float:
            emit((depth, f"r{d} = float({a})"))
        elif getattr(fn, "__closure__", None):
            cells = dict(zip(fn.__code__.co_freevars,
                             (c.cell_contents for c in fn.__closure__)))
            mask, wrap, half = cells["mask"], cells["wrap"], cells["half"]
            emit((depth, f"_tc = int({a}) & {mask}"))
            emit((depth, f"r{d} = _tc - {wrap} if _tc >= {half} else _tc"))
        else:  # bitcast identity
            emit((depth, f"r{d} = {a}"))


# ---------------------------------------------------------------------------
# The JIT tier VM
# ---------------------------------------------------------------------------

_UNSEEN = object()


class JitVirtualMachine(VirtualMachine):
    """Three-tier executor: specialized Python for hot functions, register
    VM for cold ones and as the deopt target.

    Fully substitutable for :class:`VirtualMachine`: same constructor
    surface plus the tiering knobs, same ``call``/``profile``/``steps``
    contract, bit-identical results and per-block counts.
    """

    def __init__(self, module, api_runtime=None, max_steps: int = 500_000_000,
                 seed: int = 12345, profile: bool = True,
                 jit_threshold: int = 1, vectorize: bool = True,
                 code_cache=None):
        super().__init__(module, api_runtime, max_steps, seed, profile)
        self.jit_threshold = jit_threshold
        self.vectorize = vectorize
        self.code_cache = code_cache if code_cache is not None \
            else GLOBAL_CODE_CACHE
        self.hotness = HotnessTracker(jit_threshold)
        self.deopt_count = 0
        #: "fn:block" sites whose guard failed once; further entries skip
        #: the kernel attempt and stay in specialized scalar code.
        self.deopt_sites: dict[str, bool] = {}
        self._jit_fns: dict[str, object] = {}
        #: Codegen-defect containments: function name -> number of calls
        #: replayed on the VM tier after blacklisting its specialization.
        self.codegen_defect_replays: dict[str, int] = {}

    def call(self, name: str, args: list):
        function = self.module.functions.get(name)
        if function is None or function.is_declaration():
            raise InterpreterError(f"cannot call @{name}")
        self._profile_cache = None
        return self._dispatch_call(name, list(args))

    def _dispatch_call(self, name: str, args: list):
        fn = self._jit_fns.get(name, _UNSEEN)
        if fn is not None and fn is not _UNSEEN:
            return fn(self, args)
        bc = self._bc.get(name) or self._compiled(name)
        if fn is _UNSEEN and self.hotness.note_call(name):
            fn = self._compile_jit(name, bc)
            if fn is not None:
                return self._first_run(name, fn, bc, args)
        return self._run(bc, args)

    def _first_run(self, name: str, fn, bc: BytecodeFunction, args: list):
        """Safety net around a specialization's maiden execution.

        Generated code converts every guest-visible fault to
        :class:`InterpreterError` itself, so any other exception escaping
        it (NameError, TypeError, UnboundLocalError, …) is a codegen
        defect: blacklist the function and replay the call on the
        always-correct VM tier instead of propagating the raw error.
        Step budget, RNG state and this function's block counts are
        restored before the replay; stores the defective code already
        made into caller-visible buffers are recomputed by the replay
        rather than rolled back.
        """
        steps0, rng0 = self.steps, self.rng.state
        counts0 = self._counts.get(name) if self.profiling else None
        if counts0 is not None:
            counts0 = list(counts0)
        try:
            return fn(self, args)
        except InterpreterError:
            raise
        except Exception:
            self._jit_fns[name] = None
            self.codegen_defect_replays[name] = \
                self.codegen_defect_replays.get(name, 0) + 1
            self.steps, self.rng.state = steps0, rng0
            if counts0 is not None:
                self._counts[name][:] = counts0
            return self._run(bc, args)

    def jit_compiled(self) -> list[str]:
        """Names of functions currently running specialized code."""
        return sorted(n for n, f in self._jit_fns.items() if f is not None)

    def outcome_records(self) -> list[dict]:
        """Per-function reliability records for the JIT tier, mirroring
        the detection session's outcome report: which functions run
        specialized code, which were uncompilable, and which tripped the
        blacklist-and-replay safety net (a contained codegen defect)."""
        out = []
        for name in sorted(set(self._jit_fns) |
                           set(self.codegen_defect_replays)):
            fn = self._jit_fns.get(name)
            replays = self.codegen_defect_replays.get(name, 0)
            if replays:
                status = "blacklisted-replayed"
            elif fn is None:
                status = "uncompilable"
            else:
                status = "specialized"
            out.append({"function": name, "status": status,
                        "codegen_defect_replays": replays})
        return out

    def _compile_jit(self, name: str, bc: BytecodeFunction):
        function = self.module.functions[name]
        fn = None
        try:
            # Fault seam: an injected compile failure must degrade to the
            # VM tier exactly like a genuinely uncompilable function.
            faults.maybe_fire("jit.compile", name)
            fp = jit_fingerprint(function, self.profiling, self.vectorize)
            code = self.code_cache.get(fp)
            if code is None:
                source = _Specializer(function, bc, self,
                                      self.vectorize).generate()
                code = compile(source, f"<jit:{fp[:12]}>", "exec")
                self.code_cache.put(fp, source, code)
            ns = dict(_STATIC_NS)
            ns["ATYPES"] = [self.atypes_of(bc)[k]
                            for k in range(bc.n_allocas)]
            exec(code, ns)
            fn = ns["_jitfn"]
        except (_Unsupported, SyntaxError, faults.InjectedFault):
            fn = None   # permanently uncompilable: the VM runs it
        self._jit_fns[name] = fn
        return fn

    @staticmethod
    def atypes_of(bc: BytecodeFunction) -> dict[int, object]:
        return {inst[2]: inst[4] for inst in bc.code
                if inst[0] == OP_ALLOCA}
