"""Runtime memory model: numpy-backed buffers and fat pointers.

Every allocated object (global array, array alloca, or externally supplied
numpy array) is a :class:`Buffer` over one scalar element type. Pointers
are (buffer, offset) pairs with offsets measured in scalar elements; GEP
arithmetic uses the static type layout to convert indices to offsets.
"""

from __future__ import annotations

import numpy as np

from ..errors import InterpreterError
from ..ir.types import ArrayType, FloatType, IntType, IRType, PointerType

_DTYPES = {
    ("int", 1): np.int8,  # i1 stored as int8
    ("int", 8): np.int8,
    ("int", 32): np.int32,
    ("int", 64): np.int64,
    ("float", 32): np.float32,
    ("float", 64): np.float64,
}


def scalar_type_of(ty: IRType) -> IRType:
    """The base scalar element type of a (possibly nested) array type."""
    while isinstance(ty, ArrayType):
        ty = ty.element
    return ty


def scalar_count(ty: IRType) -> int:
    """How many base scalars a value of type ``ty`` occupies."""
    count = 1
    while isinstance(ty, ArrayType):
        count *= ty.count
        ty = ty.element
    if isinstance(ty, PointerType):
        raise InterpreterError("arrays of pointers are not supported")
    return count


def dtype_of(ty: IRType) -> np.dtype:
    scalar = scalar_type_of(ty)
    if isinstance(scalar, IntType):
        key = ("int", scalar.bits if scalar.bits in (8, 32, 64) else 64)
    elif isinstance(scalar, FloatType):
        key = ("float", scalar.bits)
    else:
        raise InterpreterError(f"no dtype for type {scalar}")
    return np.dtype(_DTYPES[(key[0], key[1])])


class Buffer:
    """A flat scalar array with an element width in bytes."""

    __slots__ = ("name", "data", "element_bits")

    def __init__(self, name: str, data: np.ndarray, element_bits: int):
        self.name = name
        self.data = data
        self.element_bits = element_bits

    @classmethod
    def for_type(cls, name: str, ty: IRType) -> "Buffer":
        scalar = scalar_type_of(ty)
        data = np.zeros(scalar_count(ty), dtype=dtype_of(ty))
        bits = scalar.bits  # type: ignore[union-attr]
        return cls(name, data, bits)

    @classmethod
    def from_numpy(cls, name: str, array: np.ndarray) -> "Buffer":
        flat = np.ascontiguousarray(array).reshape(-1)
        return cls(name, flat, flat.dtype.itemsize * 8)

    @property
    def size(self) -> int:
        return int(self.data.size)

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def __repr__(self) -> str:
        return f"<Buffer {self.name} x{self.size}>"


class Pointer:
    """A fat pointer: buffer plus element offset.

    A ``__slots__`` class rather than a dataclass: the execution engines
    allocate one per GEP, so construction cost is on the hot path.
    """

    __slots__ = ("buffer", "offset")

    def __init__(self, buffer: Buffer, offset: int = 0):
        self.buffer = buffer
        self.offset = offset

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Pointer) and other.buffer is self.buffer
                and other.offset == self.offset)

    def __hash__(self) -> int:
        return hash((id(self.buffer), self.offset))

    def add(self, elements: int) -> "Pointer":
        return Pointer(self.buffer, self.offset + elements)

    def load(self):
        try:
            return self.buffer.data[self.offset].item()
        except IndexError:
            raise InterpreterError(
                f"out-of-bounds load at {self.buffer.name}[{self.offset}]"
            ) from None

    def store(self, value) -> None:
        try:
            self.buffer.data[self.offset] = value
        except IndexError:
            raise InterpreterError(
                f"out-of-bounds store at {self.buffer.name}[{self.offset}]"
            ) from None

    def view(self, length: int | None = None) -> np.ndarray:
        """A numpy view starting at this pointer (for API backends)."""
        if length is None:
            return self.buffer.data[self.offset:]
        return self.buffer.data[self.offset:self.offset + length]

    def __repr__(self) -> str:
        return f"<Pointer {self.buffer.name}+{self.offset}>"
