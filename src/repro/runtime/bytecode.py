"""Bytecode compiler: lowers IR functions to flat register-machine code.

The tree-walking :class:`~repro.runtime.interpreter.Interpreter` re-resolves
every operand (isinstance chain + ``id()`` dict lookup) on every dynamic
instruction. This module performs all of that work **once per function**:

* every SSA value (argument, instruction result, constant) is numbered into
  a dense register slot; operands become plain list indexes;
* constants — including global-variable addresses and ``undef`` — are
  materialised into a register prototype copied at frame entry, so the
  executor never distinguishes constant from register operands;
* phi nodes emit no code: each CFG edge carries a pre-sequentialised move
  list (parallel-copy semantics, cycles broken through a scratch slot);
* block successors are resolved to program-counter targets, and every edge
  knows the dense index of its destination block for O(1) profile counting;
* GEP index scales are folded from the static type layout, constant indices
  collapse into a single addend, and a GEP whose only use is a load/store in
  the same block is fused into an indexed memory op (no intermediate
  :class:`~repro.runtime.memory.Pointer` is allocated);
* per-opcode Python callables (``operator.add`` and friends, cast and
  fcmp closures, math natives) are bound directly into the instruction
  tuples, so the VM loop does zero per-step dict lookups.

Execution of the compiled form lives in :mod:`repro.runtime.vm`. Dynamic
per-block execution counts are tracked by block index and re-keyed to the
originating :class:`~repro.ir.module.BasicBlock` objects, which makes VM
profiles count-identical to the reference interpreter's.
"""

from __future__ import annotations

import math
import operator

from ..errors import InterpreterError
from ..ir.instructions import (
    AllocaInst,
    BinaryOperator,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from ..ir.module import BasicBlock, Function
from ..ir.types import ArrayType, PointerType
from ..ir.values import (
    ConstantFloat,
    ConstantInt,
    ConstantPointerNull,
    GlobalVariable,
    UndefValue,
    Value,
)
from .interpreter import _MATH_INTRINSICS
from .memory import scalar_count

# -- opcodes (ordered roughly by dynamic frequency for VM dispatch) -----------
OP_BIN = 0          # (op, dest, a, b, fn)            regs[dest] = fn(ra, rb)
OP_LOADIDX = 1      # (op, dest, p, idx, scale, add)  fused gep+load
OP_STOREIDX = 2     # (op, val, p, idx, scale, add)   fused gep+store
OP_BR = 3           # (op, cond, then_edge, else_edge)
OP_JMP = 4          # (op, edge)
OP_GEP = 5          # (op, dest, p, pairs, add)       pairs: ((idx, scale),…)
OP_LOAD = 6         # (op, dest, p)
OP_STORE = 7        # (op, val, p)
OP_SELECT = 8       # (op, dest, c, t, f)
OP_UN = 9           # (op, dest, a, fn)               casts
OP_NAT1 = 10        # (op, dest, a, fn)               1-arg native call
OP_NAT2 = 11        # (op, dest, a, b, fn)            2-arg native call
OP_NATN = 12        # (op, dest, slots, fn)           n-arg native call
OP_RAND = 13        # (op, dest)
OP_CALL_API = 14    # (op, dest, callee, slots)
OP_CALL_FN = 15     # (op, dest, fname, slots)
OP_RET = 16         # (op, slot_or_minus1)
OP_ALLOCA = 17      # (op, dest, aidx, name, ty)
OP_UNREACHABLE = 18  # (op,)
OP_LOADN = 19       # (op, dest, p, pairs, add)      fused multi-index load
OP_STOREN = 20      # (op, val, p, pairs, add)       fused multi-index store

#: A CFG edge as stored in branch instructions:
#: (target_pc, move_pairs, target_block_index).
Edge = tuple


def _raise_div_zero():
    raise InterpreterError("integer division by zero")


def _raise_rem_zero():
    raise InterpreterError("integer remainder by zero")


def _sdiv(a, b):
    if b == 0:
        _raise_div_zero()
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _srem(a, b):
    if b == 0:
        _raise_rem_zero()
    q = abs(a) // abs(b)
    q = q if (a >= 0) == (b >= 0) else -q
    return a - q * b


def _fdiv(a, b):
    return a / b if b != 0 else math.copysign(math.inf, a)


def _frem(a, b):
    return math.fmod(a, b) if b != 0 else math.nan


#: opcode -> binary callable; semantics identical to the reference
#: interpreter's _INT_OPS/_FLOAT_OPS tables.
BIN_FNS = {
    "add": operator.add, "sub": operator.sub, "mul": operator.mul,
    "and": operator.and_, "or": operator.or_, "xor": operator.xor,
    "shl": operator.lshift, "ashr": operator.rshift,
    "lshr": lambda a, b: (a & 0xFFFFFFFFFFFFFFFF) >> b,
    "fadd": operator.add, "fsub": operator.sub, "fmul": operator.mul,
    "fdiv": _fdiv, "frem": _frem,
    "sdiv": _sdiv, "udiv": _sdiv, "srem": _srem, "urem": _srem,
}

#: icmp predicate -> callable (signed/unsigned identical over Python ints,
#: exactly as in the reference engine).
ICMP_FNS = {
    "eq": operator.eq, "ne": operator.ne,
    "slt": operator.lt, "sle": operator.le,
    "sgt": operator.gt, "sge": operator.ge,
    "ult": operator.lt, "ule": operator.le,
    "ugt": operator.gt, "uge": operator.ge,
}

_FCMP_BASE = {
    "oeq": operator.eq, "one": operator.ne, "olt": operator.lt,
    "ole": operator.le, "ogt": operator.gt, "oge": operator.ge,
    "ueq": operator.eq, "une": operator.ne, "ult": operator.lt,
    "ule": operator.le, "ugt": operator.gt, "uge": operator.ge,
}


def _fcmp_fn(predicate: str):
    base = _FCMP_BASE[predicate]
    on_nan = not predicate.startswith("o")

    def fn(a, b):
        if math.isnan(a) or math.isnan(b):
            return on_nan
        return base(a, b)
    return fn


FCMP_FNS = {pred: _fcmp_fn(pred) for pred in _FCMP_BASE}


def _trunc_fn(bits: int):
    mask = (1 << bits) - 1
    wrap = 1 << bits
    half = 1 << (bits - 1) if bits > 1 else wrap

    def fn(v):
        v = int(v) & mask
        return v - wrap if v >= half else v
    return fn


def _cast_fn(inst: CastInst):
    op = inst.opcode
    if op in ("sext", "zext", "fptosi"):
        return int
    if op == "trunc":
        return _trunc_fn(inst.type.bits)  # type: ignore[union-attr]
    if op in ("sitofp", "fpext", "fptrunc"):
        return float
    if op == "bitcast":
        return lambda v: v
    raise InterpreterError(f"unhandled cast {op}")


class BytecodeFunction:
    """One function lowered to flat register bytecode."""

    __slots__ = ("name", "code", "blocks", "block_starts", "n_regs",
                 "n_allocas", "arg_slots", "literal_consts", "global_consts",
                 "value_slots")

    def __init__(self, name: str):
        self.name = name
        self.code: list[tuple] = []
        self.blocks: list[BasicBlock] = []
        #: pc of each block's first instruction, indexed like ``blocks``;
        #: lets the JIT walk code block-by-block and re-enter at a header.
        self.block_starts: list[int] = []
        self.n_regs = 0
        self.n_allocas = 0
        self.arg_slots: list[int] = []
        #: [(slot, python value)] — constants independent of the VM instance.
        self.literal_consts: list[tuple[int, object]] = []
        #: [(slot, global name)] — resolved to Pointers per VM instance.
        self.global_consts: list[tuple[int, str]] = []
        #: id(IR value) -> register slot, for consumers (the JIT's affine
        #: loop analysis) that reason on the typed IR but emit slot names.
        self.value_slots: dict[int, int] = {}


def sequence_moves(pairs: list[tuple[int, int]], get_temp) -> tuple:
    """Order parallel copies so no source is clobbered before it is read.

    ``pairs`` is a list of (dst, src) register moves with simultaneous
    semantics (phi evaluation on a CFG edge). Cycles (e.g. the classic
    two-phi swap) are broken by spilling one destination to a scratch slot
    obtained from ``get_temp()``.
    """
    pending = {d: s for d, s in pairs if d != s}
    ordered: list[tuple[int, int]] = []
    while pending:
        ready = [d for d, s in pending.items()
                 if not any(src == d for dd, src in pending.items()
                            if dd != d)]
        if ready:
            for d in ready:
                ordered.append((d, pending.pop(d)))
            continue
        # Pure cycle: save one destination, redirect its readers.
        d = next(iter(pending))
        temp = get_temp()
        ordered.append((temp, d))
        pending = {dd: (temp if ss == d else ss)
                   for dd, ss in pending.items()}
    return tuple(ordered)


class _FunctionCompiler:
    def __init__(self, function: Function):
        self.function = function
        self.slots: dict[int, int] = {}   # id(value) -> register slot
        self.next_slot = 0
        self.literal_consts: dict[tuple, int] = {}
        self.global_consts: dict[str, int] = {}
        self.fused: set[int] = set()      # id(gep) emitted via fused mem ops
        self.temp_slot: int | None = None

    # -- slot allocation -------------------------------------------------------
    def _new_slot(self) -> int:
        slot = self.next_slot
        self.next_slot += 1
        return slot

    def _const_slot(self, key: tuple, table: dict) -> int:
        slot = table.get(key)
        if slot is None:
            slot = self._new_slot()
            table[key] = slot
        return slot

    def slot_of(self, value: Value) -> int:
        """The register slot holding ``value`` (allocating const slots)."""
        if isinstance(value, ConstantInt):
            return self._const_slot(("i", value.value), self.literal_consts)
        if isinstance(value, ConstantFloat):
            # repr() keeps -0.0 and nan distinct from 0.0 under dict keys.
            return self._const_slot(("f", repr(value.value)),
                                    self.literal_consts)
        if isinstance(value, GlobalVariable):
            return self._const_slot(value.name, self.global_consts)
        if isinstance(value, ConstantPointerNull):
            return self._const_slot(("null",), self.literal_consts)
        if isinstance(value, UndefValue):
            # The reference engine reads undef as integer zero.
            return self._const_slot(("i", 0), self.literal_consts)
        slot = self.slots.get(id(value))
        if slot is None:
            raise InterpreterError(
                f"use of undefined value {value.ref()} in @"
                f"{self.function.name}")
        return slot

    def _get_temp(self) -> int:
        if self.temp_slot is None:
            self.temp_slot = self._new_slot()
        return self.temp_slot

    # -- GEP lowering ----------------------------------------------------------
    def _gep_parts(self, gep: GEPInst) -> tuple[Value, list, int]:
        """(base pointer value, [(index value, scale)…], constant addend).

        Mirrors the reference engine's address arithmetic: the first index
        steps in whole pointees, later indices step through array elements.
        """
        ty = gep.pointer.type
        if not isinstance(ty, PointerType):
            raise InterpreterError("gep on non-pointer value")
        scales = [scalar_count(ty.pointee)]
        current = ty.pointee
        for _ in gep.indices[1:]:
            if not isinstance(current, ArrayType):
                raise InterpreterError("gep into non-array type")
            current = current.element
            scales.append(scalar_count(current))
        addend = 0
        pairs = []
        for index, scale in zip(gep.indices, scales):
            if isinstance(index, ConstantInt):
                addend += index.value * scale
            else:
                pairs.append((index, scale))
        return gep.pointer, pairs, addend

    def _fusable(self, value: Value, user) -> bool:
        """May ``value`` (a gep) be recomputed at ``user``'s position?

        Safe when the gep has exactly one use and that use sits in the same
        block: register slots are assigned once per block visit, so every
        operand still holds the same value at the user's position.
        """
        return (isinstance(value, GEPInst)
                and len(value.uses) == 1
                and value.parent is user.parent)

    def _resolve_address(self, gep: GEPInst) -> tuple[int, tuple, int]:
        """(base slot, ((idx slot, scale)…), addend), folding gep chains.

        Must walk chains exactly as the fusion pre-pass in :meth:`compile`
        does, so every gep marked fused is folded here and nothing else is.
        """
        base, pairs, addend = self._gep_parts(gep)
        user: GEPInst = gep
        while self._fusable(base, user):
            inner_base, inner_pairs, inner_add = self._gep_parts(base)
            pairs = inner_pairs + pairs
            addend += inner_add
            user, base = base, inner_base
        return (self.slot_of(base),
                tuple((self.slot_of(v), s) for v, s in pairs),
                addend)

    # -- compilation -----------------------------------------------------------
    def compile(self) -> BytecodeFunction:
        function = self.function
        bc = BytecodeFunction(function.name)
        for arg in function.args:
            self.slots[id(arg)] = self._new_slot()
        bc.arg_slots = [self.slots[id(a)] for a in function.args]
        # Pre-assign result slots so forward references (loops) resolve.
        n_allocas = 0
        for inst in function.instructions():
            if isinstance(inst, AllocaInst):
                n_allocas += 1
            if not inst.type.is_void():
                self.slots[id(inst)] = self._new_slot()
        bc.n_allocas = n_allocas

        # Mark geps fused into their single same-block memory user (chains
        # fold transitively); they emit no standalone code of their own.
        for inst in function.instructions():
            if isinstance(inst, (LoadInst, StoreInst)):
                pointer = inst.pointer
                while self._fusable(pointer, inst):
                    self.fused.add(id(pointer))
                    inst, pointer = pointer, pointer.pointer

        block_index = {id(b): i for i, b in enumerate(function.blocks)}
        bc.blocks = list(function.blocks)
        code = bc.code
        block_pcs: dict[int, int] = {}
        branch_fixups: list[tuple[int, BranchInst, BasicBlock]] = []
        alloca_index = 0

        for block in function.blocks:
            block_pcs[id(block)] = len(code)
            emitted = False
            for inst in block.instructions:
                if isinstance(inst, PhiInst):
                    continue  # materialised as edge moves
                op = self._emit(inst, code, branch_fixups, alloca_index)
                if isinstance(inst, AllocaInst):
                    alloca_index += 1
                emitted = emitted or op
            if not emitted:  # pragma: no cover - verified IR always emits
                raise InterpreterError(
                    f"block %{block.name} fell through without terminator")

        # Resolve branch targets to (pc, moves, block index) edges.
        for pc, branch, source in branch_fixups:
            inst = code[pc]
            if inst[0] == OP_JMP:
                code[pc] = (OP_JMP, self._edge(branch.targets()[0], source,
                                               block_pcs, block_index))
            else:
                then_b, else_b = branch.targets()
                code[pc] = (OP_BR, inst[1],
                            self._edge(then_b, source, block_pcs,
                                       block_index),
                            self._edge(else_b, source, block_pcs,
                                       block_index))
        bc.block_starts = [block_pcs[id(b)] for b in function.blocks]
        bc.value_slots = dict(self.slots)
        bc.n_regs = self.next_slot
        bc.literal_consts = [(slot, _literal_value(key))
                             for key, slot in self.literal_consts.items()]
        bc.global_consts = [(slot, name)
                            for name, slot in self.global_consts.items()]
        return bc

    def _edge(self, target: BasicBlock, source: BasicBlock,
              block_pcs: dict, block_index: dict) -> Edge:
        moves = [(self.slots[id(phi)],
                  self.slot_of(phi.incoming_value_for(source)))
                 for phi in target.phis()]
        return (block_pcs[id(target)],
                sequence_moves(moves, self._get_temp),
                block_index[id(target)])

    def _emit(self, inst, code: list, branch_fixups: list,
              alloca_index: int) -> bool:
        """Append the bytecode for one instruction; False if none emitted."""
        if isinstance(inst, BinaryOperator):
            fn = BIN_FNS.get(inst.opcode)
            if fn is None:
                raise InterpreterError(f"unhandled binop {inst.opcode}")
            code.append((OP_BIN, self.slots[id(inst)],
                         self.slot_of(inst.lhs), self.slot_of(inst.rhs), fn))
        elif isinstance(inst, ICmpInst):
            code.append((OP_BIN, self.slots[id(inst)],
                         self.slot_of(inst.lhs), self.slot_of(inst.rhs),
                         ICMP_FNS[inst.predicate]))
        elif isinstance(inst, FCmpInst):
            code.append((OP_BIN, self.slots[id(inst)],
                         self.slot_of(inst.lhs), self.slot_of(inst.rhs),
                         FCMP_FNS[inst.predicate]))
        elif isinstance(inst, LoadInst):
            dest = self.slots[id(inst)]
            pointer = inst.pointer
            if self._fusable(pointer, inst):
                base, pairs, add = self._resolve_address(pointer)
                if len(pairs) == 1:
                    code.append((OP_LOADIDX, dest, base,
                                 pairs[0][0], pairs[0][1], add))
                else:
                    code.append((OP_LOADN, dest, base, pairs, add))
            else:
                code.append((OP_LOAD, dest, self.slot_of(pointer)))
        elif isinstance(inst, StoreInst):
            val = self.slot_of(inst.value)
            pointer = inst.pointer
            if self._fusable(pointer, inst):
                base, pairs, add = self._resolve_address(pointer)
                if len(pairs) == 1:
                    code.append((OP_STOREIDX, val, base,
                                 pairs[0][0], pairs[0][1], add))
                else:
                    code.append((OP_STOREN, val, base, pairs, add))
            else:
                code.append((OP_STORE, val, self.slot_of(pointer)))
        elif isinstance(inst, GEPInst):
            if id(inst) in self.fused:
                return False
            base, pairs, addend = self._gep_parts(inst)
            code.append((OP_GEP, self.slots[id(inst)], self.slot_of(base),
                         tuple((self.slot_of(v), s) for v, s in pairs),
                         addend))
        elif isinstance(inst, BranchInst):
            pc = len(code)
            if inst.is_conditional():
                code.append((OP_BR, self.slot_of(inst.condition),
                             None, None))
            else:
                code.append((OP_JMP, None))
            branch_fixups.append((pc, inst, inst.parent))
        elif isinstance(inst, RetInst):
            code.append((OP_RET,
                         -1 if inst.value is None
                         else self.slot_of(inst.value)))
        elif isinstance(inst, PhiInst):  # pragma: no cover - filtered above
            return False
        elif isinstance(inst, SelectInst):
            code.append((OP_SELECT, self.slots[id(inst)],
                         self.slot_of(inst.condition),
                         self.slot_of(inst.true_value),
                         self.slot_of(inst.false_value)))
        elif isinstance(inst, CastInst):
            code.append((OP_UN, self.slots[id(inst)],
                         self.slot_of(inst.value), _cast_fn(inst)))
        elif isinstance(inst, CallInst):
            self._emit_call(inst, code)
        elif isinstance(inst, AllocaInst):
            code.append((OP_ALLOCA, self.slots[id(inst)], alloca_index,
                         inst.name or "alloca", inst.allocated_type))
        elif isinstance(inst, UnreachableInst):
            code.append((OP_UNREACHABLE,))
        else:
            raise InterpreterError(f"unhandled instruction {inst.opcode}")
        return True

    def _emit_call(self, inst: CallInst, code: list) -> None:
        dest = self.slots.get(id(inst), -1)
        slots = [self.slot_of(a) for a in inst.args]
        name = inst.callee
        fn = _NATIVE_FNS.get(name)
        if fn is not None:
            if dest < 0:
                # The OP_NAT* executors store unconditionally (natives are
                # hot); route a discarded result to a scratch slot rather
                # than guarding the fast path.
                dest = self._new_slot()
            if len(slots) == 1:
                code.append((OP_NAT1, dest, slots[0], fn))
            elif len(slots) == 2:
                code.append((OP_NAT2, dest, slots[0], slots[1], fn))
            else:
                code.append((OP_NATN, dest, tuple(slots), fn))
        elif name == "rand":
            code.append((OP_RAND, dest))
        elif inst.is_api_call():
            code.append((OP_CALL_API, dest, name, tuple(slots)))
        else:
            code.append((OP_CALL_FN, dest, name, tuple(slots)))


#: Natives dispatched without touching VM state. Checked before module
#: functions, exactly like the reference engine's call path.
_NATIVE_FNS = dict(_MATH_INTRINSICS)
_NATIVE_FNS.update({"abs": abs, "max": max, "min": min})


def _literal_value(key: tuple):
    kind, *rest = key
    if kind == "i":
        return rest[0]
    if kind == "f":
        return float(rest[0])
    return None  # ("null",)


def compile_function(function: Function) -> BytecodeFunction:
    """Lower one defined IR function to flat bytecode."""
    if function.is_declaration():
        raise InterpreterError(f"cannot compile declaration @{function.name}")
    return _FunctionCompiler(function).compile()
