"""Profile-guided tiering policy: hotness counters and the JIT code cache.

The JIT tier (:mod:`repro.runtime.jit`) separates *policy* from
*mechanism*: this module decides **when** a function is worth compiling
and **whether** a previous session or sibling VM already compiled it;
the specializer decides *how*. Two pieces:

* :class:`HotnessTracker` — per-function call counters against a
  threshold. The VM's per-block ``_counts`` arrays answer "where inside
  a function is hot" (they order the generated dispatch arms); the
  tracker answers the cheaper question "has this function been entered
  often enough to pay for compilation".

* :class:`CodeCache` — compiled code objects keyed by the function's
  **content fingerprint** (the same sha256-over-canonical-text recipe
  PR 5's detection cache uses, see :mod:`repro.cache.fingerprint`).
  Everything *semantically visible* in the generated source is a pure
  function of the canonical IR text plus the JIT configuration, so two
  VMs running structurally identical modules share one compilation, and
  a transformed function (different canonical text) correctly misses.
  One perf-only input is deliberately excluded from the key: dispatch
  *arm ordering* consults the compiling VM's warm per-block counts when
  available (static loop depth otherwise), so a cache hit may serve a
  sibling VM's ordering — identical results and profiles, possibly a
  different hottest-first layout. An optional :class:`~repro.cache.store
  .ArtifactStore` backing persists the generated *source text*, letting
  warm sessions skip the bytecode walk and codegen and go straight to
  ``compile()``.
"""

from __future__ import annotations

import hashlib

from ..cache.fingerprint import globals_signature
from ..ir.module import Function
from ..ir.printer import print_function_canonical

#: Bump whenever the generated-code shape changes (new preamble, changed
#: guard structure, …); stale persisted sources then simply miss.
JIT_VERSION = 1


def jit_fingerprint(function: Function, profiling: bool,
                    vectorize: bool) -> str:
    """Content address of one function's specialized source.

    Folds everything the generated text *semantically* depends on: the
    canonical IR form, the module's globals (generated code binds them
    by name), and the JIT configuration (profiled sources carry count
    increments; vectorized sources carry guards and kernels). Dispatch
    arm ordering — a perf-only layout choice steered by the compiling
    VM's dynamic counts — is intentionally not folded in; see the module
    docstring.
    """
    module = function.module
    globals_sig = globals_signature(module) if module is not None else ""
    h = hashlib.sha256()
    h.update(f"repro-jit-v{JIT_VERSION}".encode())
    for part in (print_function_canonical(function), globals_sig,
                 f"profile={int(profiling)}:vectorize={int(vectorize)}"):
        h.update(b"\x00")
        h.update(part.encode())
    return h.hexdigest()


class HotnessTracker:
    """Call counters with a compile threshold.

    ``note_call`` returns True exactly once — on the call that crosses
    the threshold — which is the caller's cue to compile. A threshold of
    1 compiles on first entry (the default: suite workloads enter most
    functions exactly once and run their heat inside loops, so waiting
    would skip the tentpole entirely); higher thresholds keep early
    calls in the VM and let its per-block counts steer arm ordering.
    """

    def __init__(self, threshold: int = 1):
        self.threshold = max(1, threshold)
        self.calls: dict[str, int] = {}

    def note_call(self, name: str) -> bool:
        count = self.calls.get(name, 0) + 1
        self.calls[name] = count
        return count == self.threshold


class CodeCache:
    """Fingerprint-keyed cache of compiled specializations.

    In-process entries map a fingerprint to a Python *code object* (the
    expensive artifacts: codegen walk + ``compile()``); callers ``exec``
    it into a fresh namespace per VM, so no VM-instance state is ever
    shared through the cache. With a ``store`` attached, source text is
    additionally persisted under the same key (payload: one ``source``
    string), so a later process rebuilds the code object from text
    without re-walking bytecode.
    """

    def __init__(self, store=None):
        self.store = store
        self._code: dict[str, object] = {}
        self.hits = 0
        self.misses = 0
        self.compiles = 0

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "compiles": self.compiles, "entries": len(self._code)}

    def get(self, fingerprint: str):
        """The cached code object, or None. Consults the persistent
        backing on an in-process miss."""
        code = self._code.get(fingerprint)
        if code is not None:
            self.hits += 1
            return code
        if self.store is not None:
            payload = self.store.get(fingerprint)
            source = payload.get("source") if payload else None
            if isinstance(source, str):
                try:
                    code = compile(source, f"<jit:{fingerprint[:12]}>",
                                   "exec")
                except SyntaxError:  # corrupt/stale payload: treat as miss
                    code = None
                if code is not None:
                    self._code[fingerprint] = code
                    self.hits += 1
                    return code
        self.misses += 1
        return None

    def put(self, fingerprint: str, source: str, code) -> None:
        self._code[fingerprint] = code
        self.compiles += 1
        if self.store is not None:
            self.store.put(fingerprint, {"source": source})


#: Process-wide default cache: VMs over identical module content share
#: compilations (bench_interp's repeated runs, test fixtures, …).
GLOBAL_CODE_CACHE = CodeCache()
