"""IR interpreter: executes modules for correctness and profiling.

The evaluation pipeline uses it three ways (per DESIGN.md §4):

* run workloads end-to-end to validate transformations (original vs
  accelerated output equality);
* count dynamically executed instructions per basic block — the source of
  the paper's Figure 17 runtime-coverage numbers;
* feed per-opcode dynamic counts to the platform cost model, which turns
  them into simulated sequential execution times.
"""

from __future__ import annotations

import math

from ..errors import InterpreterError
from ..ir.instructions import (
    AllocaInst,
    BinaryOperator,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from ..ir.module import Function, Module
from ..ir.types import ArrayType, FloatType, IntType, PointerType
from ..ir.values import (
    Argument,
    ConstantFloat,
    ConstantInt,
    ConstantPointerNull,
    GlobalVariable,
    UndefValue,
    Value,
)
from .memory import Buffer, Pointer, scalar_count


class LCG:
    """Deterministic rand() (numerical recipes LCG)."""

    def __init__(self, seed: int = 12345):
        self.state = seed

    def next(self) -> int:
        self.state = (self.state * 1664525 + 1013904223) % (1 << 32)
        return self.state >> 16


class Profile:
    """Dynamic execution counts, attributed per basic block."""

    def __init__(self) -> None:
        self.block_counts: dict[int, int] = {}
        self.block_sizes: dict[int, int] = {}
        self.block_opcodes: dict[int, dict[str, int]] = {}

    def note_block(self, block) -> None:
        key = id(block)
        if key not in self.block_sizes:
            self.block_sizes[key] = len(block.instructions)
            histogram: dict[str, int] = {}
            for inst in block.instructions:
                histogram[inst.opcode] = histogram.get(inst.opcode, 0) + 1
            self.block_opcodes[key] = histogram
        self.block_counts[key] = self.block_counts.get(key, 0) + 1

    def total_instructions(self) -> int:
        return sum(count * self.block_sizes[key]
                   for key, count in self.block_counts.items())

    def instructions_in(self, block_ids: set[int]) -> int:
        return sum(count * self.block_sizes[key]
                   for key, count in self.block_counts.items()
                   if key in block_ids)

    def opcode_counts(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for key, count in self.block_counts.items():
            for opcode, n in self.block_opcodes[key].items():
                totals[opcode] = totals.get(opcode, 0) + count * n
        return totals


_INT_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << b,
    "ashr": lambda a, b: a >> b,
    "lshr": lambda a, b: (a & 0xFFFFFFFFFFFFFFFF) >> b,
}

_FLOAT_OPS = {
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "fdiv": lambda a, b: a / b if b != 0 else math.copysign(math.inf, a),
    "frem": lambda a, b: math.fmod(a, b) if b != 0 else math.nan,
}

_ICMP = {
    "eq": lambda a, b: a == b, "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b, "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b, "sge": lambda a, b: a >= b,
    "ult": lambda a, b: a < b, "ule": lambda a, b: a <= b,
    "ugt": lambda a, b: a > b, "uge": lambda a, b: a >= b,
}

_FCMP = {
    "oeq": lambda a, b: a == b, "one": lambda a, b: a != b,
    "olt": lambda a, b: a < b, "ole": lambda a, b: a <= b,
    "ogt": lambda a, b: a > b, "oge": lambda a, b: a >= b,
    "ueq": lambda a, b: a == b, "une": lambda a, b: a != b,
    "ult": lambda a, b: a < b, "ule": lambda a, b: a <= b,
    "ugt": lambda a, b: a > b, "uge": lambda a, b: a >= b,
}


class Interpreter:
    """Executes IR functions over numpy-backed memory."""

    def __init__(self, module: Module, api_runtime=None,
                 max_steps: int = 500_000_000, seed: int = 12345):
        self.module = module
        self.api_runtime = api_runtime
        self.profile = Profile()
        self.max_steps = max_steps
        self.steps = 0
        self.rng = LCG(seed)
        self.globals: dict[str, Buffer] = {}
        for gv in module.globals.values():
            buffer = Buffer.for_type(gv.name, gv.value_type)
            if gv.initializer is not None:
                flat = _flatten(gv.initializer)
                buffer.data[:len(flat)] = flat
            self.globals[gv.name] = buffer

    # -- public API ---------------------------------------------------------------
    def bind_global(self, name: str, array) -> Buffer:
        """Replace a global's storage with (a copy of) a numpy array."""
        import numpy as np

        gv = self.module.globals.get(name)
        if gv is None:
            raise InterpreterError(f"no global @{name}")
        buffer = self.globals[name]
        flat = np.asarray(array).reshape(-1).astype(buffer.data.dtype)
        buffer.data[:flat.size] = flat
        return buffer

    def call(self, name: str, args: list):
        function = self.module.functions.get(name)
        if function is None or function.is_declaration():
            raise InterpreterError(f"cannot call @{name}")
        return self._run_function(function, list(args))

    # -- execution -------------------------------------------------------------------
    def _run_function(self, function: Function, args: list):
        if len(args) != len(function.args):
            raise InterpreterError(
                f"@{function.name} expects {len(function.args)} args")
        env: dict[int, object] = {}
        for formal, actual in zip(function.args, args):
            env[id(formal)] = actual
        allocas: dict[int, Buffer] = {}

        block = function.entry
        prev_block = None
        while True:
            self.profile.note_block(block)
            self.steps += 1
            if self.steps > self.max_steps:
                raise InterpreterError("interpreter step budget exceeded")

            # Phis evaluate simultaneously on entry.
            phis = block.phis()
            if phis:
                values = [self._value(phi.incoming_value_for(prev_block), env)
                          for phi in phis]
                for phi, value in zip(phis, values):
                    env[id(phi)] = value

            for inst in block.instructions[len(phis):]:
                if isinstance(inst, BranchInst):
                    if inst.is_conditional():
                        cond = self._value(inst.condition, env)
                        target = inst.operands[1] if cond else inst.operands[2]
                    else:
                        target = inst.operands[0]
                    prev_block, block = block, target
                    break
                if isinstance(inst, RetInst):
                    if inst.value is None:
                        return None
                    return self._value(inst.value, env)
                if isinstance(inst, UnreachableInst):
                    raise InterpreterError("reached unreachable")
                env[id(inst)] = self._execute(inst, env, allocas)
            else:
                raise InterpreterError(
                    f"block %{block.name} fell through without terminator")

    def _value(self, value: Value, env: dict):
        if isinstance(value, ConstantInt):
            return value.value
        if isinstance(value, ConstantFloat):
            return value.value
        if isinstance(value, GlobalVariable):
            return Pointer(self.globals[value.name], 0)
        if isinstance(value, ConstantPointerNull):
            return None
        if isinstance(value, UndefValue):
            return 0
        result = env.get(id(value))
        if result is None and id(value) not in env:
            raise InterpreterError(f"use of undefined value {value.ref()}")
        return result

    def _execute(self, inst, env, allocas):
        if isinstance(inst, BinaryOperator):
            lhs = self._value(inst.lhs, env)
            rhs = self._value(inst.rhs, env)
            op = inst.opcode
            if op in _INT_OPS:
                return _INT_OPS[op](lhs, rhs)
            if op in _FLOAT_OPS:
                return _FLOAT_OPS[op](lhs, rhs)
            if op in ("sdiv", "udiv"):
                if rhs == 0:
                    raise InterpreterError("integer division by zero")
                q = abs(lhs) // abs(rhs)
                return q if (lhs >= 0) == (rhs >= 0) else -q
            if op in ("srem", "urem"):
                if rhs == 0:
                    raise InterpreterError("integer remainder by zero")
                q = abs(lhs) // abs(rhs)
                q = q if (lhs >= 0) == (rhs >= 0) else -q
                return lhs - q * rhs
            raise InterpreterError(f"unhandled binop {op}")
        if isinstance(inst, ICmpInst):
            return _ICMP[inst.predicate](
                self._value(inst.lhs, env), self._value(inst.rhs, env))
        if isinstance(inst, FCmpInst):
            a = self._value(inst.lhs, env)
            b = self._value(inst.rhs, env)
            if math.isnan(a) or math.isnan(b):
                return not inst.predicate.startswith("o") and \
                    inst.predicate != "one"
            return _FCMP[inst.predicate](a, b)
        if isinstance(inst, GEPInst):
            return self._gep(inst, env)
        if isinstance(inst, LoadInst):
            pointer = self._value(inst.pointer, env)
            if not isinstance(pointer, Pointer):
                raise InterpreterError("load from non-pointer value")
            return pointer.load()
        if isinstance(inst, StoreInst):
            pointer = self._value(inst.pointer, env)
            if not isinstance(pointer, Pointer):
                raise InterpreterError("store to non-pointer value")
            pointer.store(self._value(inst.value, env))
            return None
        if isinstance(inst, AllocaInst):
            buffer = allocas.get(id(inst))
            if buffer is None:
                buffer = Buffer.for_type(inst.name or "alloca",
                                         inst.allocated_type)
                allocas[id(inst)] = buffer
            return Pointer(buffer, 0)
        if isinstance(inst, SelectInst):
            cond = self._value(inst.condition, env)
            return self._value(inst.true_value if cond else inst.false_value,
                               env)
        if isinstance(inst, CastInst):
            return self._cast(inst, env)
        if isinstance(inst, CallInst):
            return self._call(inst, env)
        raise InterpreterError(f"unhandled instruction {inst.opcode}")

    def _gep(self, inst: GEPInst, env):
        pointer = self._value(inst.pointer, env)
        if not isinstance(pointer, Pointer):
            raise InterpreterError("gep on non-pointer value")
        ty = inst.pointer.type
        assert isinstance(ty, PointerType)
        offset = pointer.offset
        # First index steps in units of the pointee.
        first = self._value(inst.indices[0], env)
        offset += first * scalar_count(ty.pointee)
        current = ty.pointee
        for index in inst.indices[1:]:
            if not isinstance(current, ArrayType):
                raise InterpreterError("gep into non-array type")
            idx = self._value(index, env)
            current = current.element
            offset += idx * scalar_count(current)
        return Pointer(pointer.buffer, offset)

    def _cast(self, inst: CastInst, env):
        value = self._value(inst.value, env)
        op = inst.opcode
        if op in ("sext", "zext"):
            return int(value)
        if op == "trunc":
            bits = inst.type.bits  # type: ignore[union-attr]
            mask = (1 << bits) - 1
            v = int(value) & mask
            if bits > 1 and v >= (1 << (bits - 1)):
                v -= 1 << bits
            return v
        if op == "sitofp":
            return float(value)
        if op == "fptosi":
            return int(value)
        if op in ("fpext", "fptrunc"):
            return float(value)
        if op == "bitcast":
            return value
        raise InterpreterError(f"unhandled cast {op}")

    def _call(self, inst: CallInst, env):
        args = [self._value(a, env) for a in inst.args]
        name = inst.callee
        if name in _MATH_INTRINSICS:
            return _MATH_INTRINSICS[name](*args)
        if name == "rand":
            return self.rng.next()
        if name == "abs":
            return abs(args[0])
        if name == "max":
            return max(args[0], args[1])
        if name == "min":
            return min(args[0], args[1])
        if inst.is_api_call():
            if self.api_runtime is None:
                raise InterpreterError(
                    f"API call {name} with no runtime attached")
            return self.api_runtime.dispatch(name, args, self)
        function = self.module.functions.get(name)
        if function is not None and not function.is_declaration():
            return self._run_function(function, args)
        raise InterpreterError(f"call to unknown function @{name}")


def _safe_sqrt(x: float) -> float:
    return math.sqrt(x) if x >= 0 else math.nan


def _safe_log(x: float) -> float:
    if x > 0:
        return math.log(x)
    return -math.inf if x == 0 else math.nan


_MATH_INTRINSICS = {
    "sqrt": _safe_sqrt,
    "fabs": abs,
    "exp": math.exp,
    "log": _safe_log,
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "floor": math.floor,
    "ceil": math.ceil,
    "pow": lambda a, b: math.pow(a, b),
    "fmax": max,
    "fmin": min,
}


def _flatten(value) -> list:
    if isinstance(value, (list, tuple)):
        out: list = []
        for item in value:
            out.extend(_flatten(item))
        return out
    return [value]
