"""Execution substrate: memory model, execution engines, benchmark runner.

Two engines share one semantic contract (identical outputs and
count-identical profiles): the reference tree-walking ``Interpreter`` and
the bytecode-compiling ``VirtualMachine`` (the default).
"""

from .bytecode import BytecodeFunction, compile_function
from .interpreter import Interpreter, Profile
from .memory import Buffer, Pointer, dtype_of, scalar_count, scalar_type_of
from .runner import (
    DEFAULT_ENGINE,
    ENGINES,
    CompiledWorkload,
    ExecutionResult,
    compile_workload,
    new_engine,
    outputs_identical,
    outputs_match,
    run_accelerated,
    run_original,
    run_transformed,
)
from .vm import VirtualMachine

__all__ = [
    "Interpreter", "Profile", "VirtualMachine",
    "BytecodeFunction", "compile_function",
    "ENGINES", "DEFAULT_ENGINE", "new_engine",
    "Buffer", "Pointer", "dtype_of", "scalar_count", "scalar_type_of",
    "CompiledWorkload", "ExecutionResult", "compile_workload",
    "outputs_identical", "outputs_match",
    "run_accelerated", "run_original", "run_transformed",
]
