"""Execution substrate: memory model, execution engines, benchmark runner.

Three execution tiers share one semantic contract (identical outputs and
count-identical profiles): the reference tree-walking ``Interpreter``, the
bytecode-compiling ``VirtualMachine`` (the default), and the
profile-guided ``JitVirtualMachine`` that specializes hot functions to
compiled Python with numpy-batched affine loops.
"""

from .bytecode import BytecodeFunction, compile_function
from .interpreter import Interpreter, Profile
from .jit import JitVirtualMachine
from .memory import Buffer, Pointer, dtype_of, scalar_count, scalar_type_of
from .profile import GLOBAL_CODE_CACHE, CodeCache, HotnessTracker, \
    jit_fingerprint
from .runner import (
    DEFAULT_ENGINE,
    ENGINE_DESCRIPTIONS,
    ENGINES,
    CompiledWorkload,
    ExecutionResult,
    compile_workload,
    new_engine,
    outputs_identical,
    outputs_match,
    run_accelerated,
    run_original,
    run_transformed,
)
from .vm import VirtualMachine

__all__ = [
    "Interpreter", "Profile", "VirtualMachine", "JitVirtualMachine",
    "BytecodeFunction", "compile_function",
    "CodeCache", "HotnessTracker", "jit_fingerprint", "GLOBAL_CODE_CACHE",
    "ENGINES", "ENGINE_DESCRIPTIONS", "DEFAULT_ENGINE", "new_engine",
    "Buffer", "Pointer", "dtype_of", "scalar_count", "scalar_type_of",
    "CompiledWorkload", "ExecutionResult", "compile_workload",
    "outputs_identical", "outputs_match",
    "run_accelerated", "run_original", "run_transformed",
]
