"""Execution substrate: memory model, IR interpreter, benchmark runner."""

from .interpreter import Interpreter, Profile
from .memory import Buffer, Pointer, dtype_of, scalar_count, scalar_type_of
from .runner import (
    CompiledWorkload,
    ExecutionResult,
    compile_workload,
    outputs_match,
    run_accelerated,
    run_original,
)

__all__ = [
    "Interpreter", "Profile",
    "Buffer", "Pointer", "dtype_of", "scalar_count", "scalar_type_of",
    "CompiledWorkload", "ExecutionResult", "compile_workload",
    "outputs_match", "run_accelerated", "run_original",
]
