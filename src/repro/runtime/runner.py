"""End-to-end benchmark runner: compile → detect → transform → execute.

Produces everything the evaluation needs for one workload:

* detection report (Table 1 / Figure 16),
* runtime coverage from interpreter block counts (Figure 17),
* simulated sequential time from dynamic opcode counts,
* accelerated times per (API, platform) from the cost model
  (Table 3 / Figures 18-19),
* functional outputs of both versions, for equivalence checking.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..backends.api import ApiRuntime
from ..errors import TransformError
from ..frontend import compile_c
from ..idioms import DetectionReport, IdiomDetector, IdiomMatch
from ..ir.module import Module
from ..passes import optimize
from ..platform.machine import sequential_time_seconds
from .interpreter import Interpreter
from .jit import JitVirtualMachine
from .memory import Buffer, Pointer
from .vm import VirtualMachine

#: Available execution engines — the three tiers. ``vm`` (the default)
#: compiles functions to flat register bytecode once and runs them ~an
#: order of magnitude faster than ``reference``, the original tree-walking
#: interpreter kept as the semantic baseline; ``jit`` adds profile-guided
#: specialization of hot functions to Python code with numpy-batched
#: affine loops on top of the VM. All three produce identical outputs and
#: count-identical per-block profiles.
ENGINES = {"reference": Interpreter, "vm": VirtualMachine,
           "jit": JitVirtualMachine}
DEFAULT_ENGINE = "vm"

#: One-line descriptions, surfaced by the harness's ``--list``.
ENGINE_DESCRIPTIONS = {
    "reference": "tree-walking interpreter over the IR (semantic baseline)",
    "vm": "register bytecode VM, functions lowered once on first call",
    "jit": "VM plus profile-guided specialization: hot functions become "
           "compiled Python with numpy-batched affine loops, deopting to "
           "the VM when a guard fails",
}


def new_engine(module: Module, engine: str | None = None, api_runtime=None,
               jit_threshold: int | None = None):
    """Instantiate an execution engine by name (None → DEFAULT_ENGINE).

    ``jit_threshold`` — calls before a function is specialized — only
    applies to the ``jit`` tier and is ignored by the others.
    """
    name = engine or DEFAULT_ENGINE
    cls = ENGINES.get(name)
    if cls is None:
        raise ValueError(f"unknown engine {name!r} "
                         f"(choose from {', '.join(sorted(ENGINES))})")
    kwargs = {}
    if jit_threshold is not None and cls is JitVirtualMachine:
        kwargs["jit_threshold"] = jit_threshold
    return cls(module, api_runtime=api_runtime, **kwargs)


@dataclass
class CompiledWorkload:
    """A compiled benchmark plus its detection results."""

    name: str
    module: Module
    report: DetectionReport
    compile_seconds: float = 0.0
    detect_seconds: float = 0.0


@dataclass
class ExecutionResult:
    """One interpreted execution."""

    value: object
    buffers: dict[str, Buffer]
    total_instructions: int
    idiom_instructions: int
    opcode_counts: dict[str, int]
    api_runtime: ApiRuntime | None = None
    transforms: list = field(default_factory=list)
    #: Matches the transformer refused (their loops ran unmodified).
    rejected: list = field(default_factory=list)

    @property
    def coverage(self) -> float:
        if self.total_instructions == 0:
            return 0.0
        return self.idiom_instructions / self.total_instructions

    @property
    def sequential_seconds(self) -> float:
        return sequential_time_seconds(self.opcode_counts)


def compile_workload(name: str, source: str, workers: int = 1,
                     detect_mode: str = "thread",
                     ordering: str = "forest",
                     verify: bool = True,
                     cache_dir=None,
                     deadline_s: float | None = None,
                     max_retries: int = 2) -> CompiledWorkload:
    """Compile and detect, recording wall-clock for Table 2.

    ``workers``/``detect_mode`` configure the detection session's worker
    pool and ``ordering`` the solve configuration (cross-idiom plan
    forest by default); the report is identical regardless
    (deterministic merge, bit-identical match sets). ``verify=False``
    skips post-convergence IR verification — the experiment harness's
    hot path; tests keep it on. ``cache_dir`` (a directory path, or a shared
    :class:`~repro.cache.ArtifactStore` for aggregate telemetry) enables
    the persistent artifact cache (:mod:`repro.cache`): unchanged
    functions are served from disk with the report still bit-identical to a cold run.
    ``deadline_s``/``max_retries`` configure detection supervision: a
    per-function solve wall-clock bound (overruns become partial
    results, flagged in ``report.outcomes``) and the retry budget for
    transient worker failures.
    """
    import time

    t0 = time.perf_counter()
    module = compile_c(source, name)
    optimize(module, verify=verify)
    t1 = time.perf_counter()
    report = IdiomDetector(ordering=ordering, cache=cache_dir) \
        .detect(module, workers=workers, mode=detect_mode,
                deadline_s=deadline_s, max_retries=max_retries)
    t2 = time.perf_counter()
    return CompiledWorkload(name, module, report,
                            compile_seconds=t1 - t0,
                            detect_seconds=t2 - t1)


def _bind_arguments(interpreter, module: Module, entry: str,
                    inputs: dict) -> tuple[list, dict[str, Buffer]]:
    """Convert python/numpy inputs to interpreter argument values."""
    function = module.get_function(entry)
    args = []
    buffers: dict[str, Buffer] = {}
    for formal in function.args:
        if formal.name not in inputs:
            raise TransformError(
                f"missing input {formal.name!r} for @{entry}")
        value = inputs[formal.name]
        if isinstance(value, np.ndarray):
            buffer = Buffer.from_numpy(formal.name, value.copy())
            buffers[formal.name] = buffer
            args.append(Pointer(buffer, 0))
        else:
            args.append(value)
    return args, buffers


def run_original(workload: CompiledWorkload, entry: str, inputs: dict,
                 engine: str | None = None,
                 jit_threshold: int | None = None) -> ExecutionResult:
    """Execute the unmodified module, attributing idiom coverage."""
    interpreter = new_engine(workload.module, engine,
                             jit_threshold=jit_threshold)
    args, buffers = _bind_arguments(interpreter, workload.module, entry,
                                    inputs)
    value = interpreter.call(entry, args)
    for name, buffer in interpreter.globals.items():
        buffers.setdefault(name, buffer)

    idiom_blocks: set[int] = set()
    for match in workload.report.matches:
        idiom_blocks |= match.region_blocks()
    profile = interpreter.profile
    return ExecutionResult(
        value=value,
        buffers=buffers,
        total_instructions=profile.total_instructions(),
        idiom_instructions=profile.instructions_in(idiom_blocks),
        opcode_counts=profile.opcode_counts(),
    )


def run_accelerated(workload: CompiledWorkload, entry: str, inputs: dict,
                    matches: list[IdiomMatch] | None = None,
                    engine: str | None = None,
                    backends: list[str] | None = None,
                    placement: dict | None = None,
                    jit_threshold: int | None = None) -> ExecutionResult:
    """Transform the matched idioms to API calls, then execute.

    The transformation mutates ``workload.module`` in place, so callers
    wanting to compare against the original must either run the original
    first or compile a fresh copy.

    ``backends`` restricts which registry backends may lower matches (the
    ``--backends`` CLI flag). ``placement`` (call_id → location, from
    :meth:`repro.platform.placement.PlacementPlan.locations`) enables the
    runtime's live residency tracker during execution.
    """
    from ..transform.replace import Transformer

    runtime = ApiRuntime()
    transformer = Transformer(workload.module, runtime, backends=backends)
    applied = transformer.apply(matches if matches is not None
                                else list(workload.report.matches))
    if placement is not None:
        runtime.set_placement(placement)
    result = run_transformed(workload, entry, inputs, runtime,
                             engine=engine, jit_threshold=jit_threshold)
    result.transforms = applied
    result.rejected = transformer.rejected
    return result


def run_transformed(workload: CompiledWorkload, entry: str, inputs: dict,
                    runtime: ApiRuntime,
                    engine: str | None = None,
                    jit_threshold: int | None = None) -> ExecutionResult:
    """Execute an already-transformed module against its ``ApiRuntime``.

    Used to replay one transformation under a different engine or
    placement without re-running detection; note the runtime's site
    statistics and event log keep accumulating across replays.
    """
    interpreter = new_engine(workload.module, engine, api_runtime=runtime,
                             jit_threshold=jit_threshold)
    args, buffers = _bind_arguments(interpreter, workload.module, entry,
                                    inputs)
    value = interpreter.call(entry, args)
    for name, buffer in interpreter.globals.items():
        buffers.setdefault(name, buffer)
    profile = interpreter.profile
    return ExecutionResult(
        value=value,
        buffers=buffers,
        total_instructions=profile.total_instructions(),
        idiom_instructions=0,
        opcode_counts=profile.opcode_counts(),
        api_runtime=runtime,
    )


def outputs_match(a: ExecutionResult, b: ExecutionResult,
                  rtol: float = 1e-9, atol: float = 1e-9) -> bool:
    """Compare return values and every shared buffer."""
    if a.value is not None or b.value is not None:
        if not np.allclose(a.value, b.value, rtol=rtol, atol=atol,
                           equal_nan=True):
            return False
    for name, buffer in a.buffers.items():
        other = b.buffers.get(name)
        if other is None:
            continue
        if not np.allclose(buffer.data, other.data, rtol=rtol, atol=atol,
                           equal_nan=True):
            return False
    return True


def outputs_identical(a: ExecutionResult, b: ExecutionResult) -> bool:
    """Bit-exact comparison of return values and shared buffers (NaNs
    compare equal positionally) — the engine/placement invariance check:
    handlers are shared numpy code, so accelerated outputs must not
    depend on the execution engine or the placement strategy at all."""
    def same(x, y) -> bool:
        x, y = np.asarray(x), np.asarray(y)
        if x.shape != y.shape:
            return False
        eq = (x == y)
        if x.dtype.kind == "f" and y.dtype.kind == "f":
            eq = eq | (np.isnan(x) & np.isnan(y))
        return bool(np.all(eq))

    if (a.value is None) != (b.value is None):
        return False
    if a.value is not None and not same(a.value, b.value):
        return False
    for name, buffer in a.buffers.items():
        other = b.buffers.get(name)
        if other is not None and not same(buffer.data, other.data):
            return False
    return True
