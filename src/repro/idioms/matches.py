"""Idiom match objects: solver solutions enriched with derived structure."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..idl.solver import SolverStats
from ..ir.instructions import Instruction
from ..ir.module import Function
from ..ir.values import ConstantInt, Value

#: Table-1 category for each top-level idiom.
CATEGORY_OF: dict[str, str] = {
    "Reduction": "scalar_reduction",
    "Histogram": "histogram_reduction",
    "Stencil1D": "stencil",
    "Stencil2D": "stencil",
    "Stencil3D": "stencil",
    "GEMM": "matrix_op",
    "SPMV": "sparse_matrix_op",
}


@dataclass
class IdiomMatch:
    """One detected idiom instance within a function."""

    idiom: str
    function: Function
    solution: dict[str, Value]
    #: Search stats of the (function, idiom) solve that produced this
    #: match; shared by every match of that solve.
    stats: SolverStats | None = field(default=None, compare=False)

    @property
    def category(self) -> str:
        return CATEGORY_OF.get(self.idiom, self.idiom)

    # -- anchors for overlap resolution / counting -----------------------------
    def anchor(self) -> tuple:
        """A stable identity for this instance.

        Two solutions describe the same instance when they agree on the
        loop(s) and the principal updated value — extra witness bindings
        (which read matched ``reads[0]`` etc.) do not create new instances.
        """
        keys: list[str] = []
        if self.idiom == "Reduction":
            keys = ["iterator", "old_value"]
        elif self.idiom == "Histogram":
            keys = ["iterator", "store"]
        elif self.idiom == "SPMV":
            keys = ["iterator", "inner.iterator", "output.store"]
        elif self.idiom == "GEMM":
            keys = ["iterator[0]", "iterator[1]", "iterator[2]",
                    "output.store"]
        elif self.idiom.startswith("Stencil"):
            keys = [k for k in ("iterator", "iterator[0]", "iterator[1]",
                                "iterator[2]") if k in self.solution]
            keys.append("write.store")
        ids = tuple(id(self.solution[k]) for k in keys if k in self.solution)
        return (self.idiom, id(self.function), ids)

    def loop_headers(self) -> list[Instruction]:
        """Header phi instructions of every loop this idiom spans."""
        headers = []
        for key in ("iterator", "inner.iterator", "iterator[0]",
                    "iterator[1]", "iterator[2]"):
            value = self.solution.get(key)
            if isinstance(value, Instruction):
                headers.append(value)
        return headers

    def region_blocks(self) -> set[int]:
        """ids of the basic blocks spanned by the idiom's loops."""
        from ..analysis.loops import LoopInfo

        info = LoopInfo(self.function)
        blocks: set[int] = set()
        for header in self.loop_headers():
            if header.parent is None:
                continue
            loop = info.loop_of_block(header.parent)
            # loop_of_block returns the innermost; walk up to the loop whose
            # header matches this phi's block.
            while loop is not None and loop.header is not header.parent:
                loop = loop.parent
            if loop is not None:
                blocks.update(id(b) for b in loop.blocks)
        return blocks

    # -- convenience accessors for the transformer -----------------------------
    def value(self, name: str) -> Value | None:
        return self.solution.get(name)

    def family(self, base: str) -> list[Value]:
        values = []
        i = 0
        while f"{base}[{i}]" in self.solution:
            values.append(self.solution[f"{base}[{i}]"])
            i += 1
        return values

    def stencil_offsets(self) -> list[tuple[int, ...]]:
        """Per-read constant offsets for stencil matches (0 when absent)."""
        dims = {"Stencil1D": 1, "Stencil2D": 2, "Stencil3D": 3}.get(
            self.idiom, 0)
        offsets: list[tuple[int, ...]] = []
        i = 0
        while f"reads[{i}].address" in self.solution:
            per_dim: list[int] = []
            for d in range(dims):
                off = "off" if dims == 1 else f"off{d + 1}"
                sidx = "sidx" if dims == 1 else f"sidx{d + 1}"
                const = self.solution.get(f"reads[{i}].{off}.offset")
                if isinstance(const, ConstantInt):
                    # A subtracted offset means negative displacement; the
                    # sign is recovered from the index expression opcode.
                    index = self.solution.get(f"reads[{i}].{sidx}")
                    sign = -1 if (index is not None and getattr(
                        index, "opcode", "") == "sub") else 1
                    per_dim.append(sign * const.value)
                else:
                    per_dim.append(0)
            offsets.append(tuple(per_dim))
            i += 1
        return offsets

    def __repr__(self) -> str:
        return (f"<IdiomMatch {self.idiom} in @{self.function.name} "
                f"({len(self.solution)} vars)>")


@dataclass
class DetectionReport:
    """All idiom instances found in one module."""

    module_name: str
    matches: list[IdiomMatch] = field(default_factory=list)
    #: Aggregated search effort over every (function, idiom) solve —
    #: including solves that produced no match.
    stats: SolverStats = field(default_factory=SolverStats)
    #: Per-function reliability records
    #: (:class:`~repro.reliability.supervisor.SessionOutcomes`) when the
    #: report came from a :class:`~repro.idioms.scheduler.DetectionSession`;
    #: None for reports assembled by hand. A report with any
    #: ``timed-out-partial`` outcome is complete in *shape* (every
    #: function accounted for) but possibly missing matches for those
    #: functions.
    outcomes: object = None

    def by_category(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for match in self.matches:
            counts[match.category] = counts.get(match.category, 0) + 1
        return counts

    def by_idiom(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for match in self.matches:
            counts[match.idiom] = counts.get(match.idiom, 0) + 1
        return counts

    def total(self) -> int:
        return len(self.matches)

    def of_idiom(self, name: str) -> list[IdiomMatch]:
        return [m for m in self.matches if m.idiom == name]


def report_fingerprint(report: DetectionReport,
                       by_identity: bool = True) -> list[tuple]:
    """A comparable digest of a report's match set — matches in order,
    solutions as sorted (variable, value-key) tuples.

    This is THE bit-identity check used by the benchmarks, the CI gates
    and the tests: two reports fingerprint equal iff they contain the
    same matches, in the same order, with the same bindings.
    ``by_identity=True`` keys values by object identity (exact for
    reports over one IR instance); ``by_identity=False`` uses the
    solver's structural :func:`~repro.idl.atoms.value_key`, which also
    equates constants decoded from the process-mode / artifact-cache wire
    format with their originals.
    """
    from ..idl.atoms import value_key

    def vkey(value):
        return id(value) if by_identity else value_key(value)

    return [(m.idiom, m.function.name,
             tuple((k, vkey(v)) for k, v in sorted(m.solution.items())))
            for m in report.matches]
