"""Detection scheduling: one compiled plan set, batched functions, a
configurable worker pool.

A :class:`DetectionSession` is the unit of repository-scale detection the
ROADMAP's scaling work builds on: it compiles every idiom's execution plan
once, shares one :class:`FunctionAnalyses` per function across all idioms,
batches the module's functions, and fans the batches out over a
``concurrent.futures`` pool. Results are merged back in module order, so a
parallel session produces a :class:`DetectionReport` identical to the
sequential one — same matches, same order.

Two pool flavours:

* ``mode="thread"`` shares the IR in place; matches reference the caller's
  objects directly.
* ``mode="process"`` ships each batch as textual IR (the printer/parser
  round-trip preserves block and instruction order), detects in the worker
  process, and sends solutions back as structural locators that are decoded
  against the caller's module — so even process-mode matches point at the
  caller's IR objects. Only the standard idiom library is supported there,
  because workers rebuild the detector from configuration alone.

When the detector carries an artifact cache (:mod:`repro.cache`), the
session consults it *before* scheduling: every function whose fingerprint
has a stored entry is served from disk (matches decoded against the
caller's IR, solve stats restored), and only the remaining functions are
batched out to workers — whatever the pool flavour. Freshly solved
functions are written back, and hits and fresh solves are merged in module
order, so the report is bit-identical to a cold run's: same matches, same
order, same aggregated stats.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from ..analysis.info import FunctionAnalyses
from ..errors import IDLError
from ..idl.solver import SolveLimits, SolverStats
from ..ir.instructions import Instruction
from ..ir.module import Function, Module
from ..ir.printer import print_module
from ..ir.types import parse_type
from ..ir.values import Argument, ConstantFloat, ConstantInt, GlobalVariable
from .matches import DetectionReport, IdiomMatch


class DetectionSession:
    """Shared-plan, batched, optionally parallel idiom detection."""

    def __init__(self, detector=None, workers: int = 1,
                 mode: str = "thread", batch_size: int | None = None):
        if detector is None:
            from .detector import IdiomDetector

            detector = IdiomDetector()
        if mode not in ("thread", "process"):
            raise IDLError(f"unknown detection mode {mode!r}")
        if mode == "process" and not detector.standard_library:
            # Fail at construction, not first use: a process session with
            # a custom compiler would otherwise silently run the standard
            # library (workers rebuild the detector from configuration).
            raise IDLError(
                "process-mode detection supports the standard idiom "
                "library only (workers rebuild the detector from "
                "configuration); use mode='thread' for custom compilers")
        self.detector = detector
        self.workers = max(1, int(workers))
        self.mode = mode
        self.batch_size = batch_size
        #: FunctionAnalyses per function name, reset and refilled by each
        #: detect() call (thread/serial modes; process workers keep theirs)
        #: for reuse by later pipeline stages. Cache-served functions have
        #: no entry — nothing was analysed for them.
        self.analyses: dict[str, FunctionAnalyses] = {}
        #: Artifact-cache accounting for the most recent detect() call:
        #: functions served from the store vs actually solved (always 0 /
        #: all-functions without a cache).
        self.cache_hits = 0
        self.cache_misses = 0
        self._globals_sig: str | None = None
        #: Canonical text per function name, printed once per detect()
        #: call and shared by every fingerprint derived from it.
        self._canonical: dict[str, str] = {}

    # -- public API ---------------------------------------------------------------
    def detect(self, module: Module) -> DetectionReport:
        functions = [f for f in module.functions.values()
                     if not f.is_declaration()]
        report = DetectionReport(module.name)
        self.analyses = {}
        self.cache_hits = self.cache_misses = 0
        self._globals_sig = None
        if not functions:
            return report
        cache = self.detector.cache
        warm: dict[str, object] = {}
        self._canonical = {}
        if cache is not None:
            from ..cache.fingerprint import globals_signature
            from ..ir.printer import print_function_canonical

            self._globals_sig = globals_signature(module)
            for function in functions:
                text = print_function_canonical(function)
                self._canonical[function.name] = text
                entry = cache.load(function, module, self._globals_sig,
                                   text)
                if entry is not None:
                    warm[function.name] = entry
            cold = [f for f in functions if f.name not in warm]
            self.cache_hits = len(warm)
        else:
            cold = functions
        self.cache_misses = len(cold)
        solved: dict[str, tuple] = {}
        if cold:
            # Lower and plan every idiom up front, whatever the ordering:
            # workers must only read the compiler caches (the shared
            # Lowerer's memo machinery, like the forest builder, is not
            # safe to run concurrently).
            self.detector.compiler.prepare(
                self.detector.idioms, memo=self.detector.memo,
                forest=self.detector.ordering == "forest")
            if self.workers <= 1:
                results = [self._detect_batch(cold)]
            elif self.mode == "thread":
                results = self._run_threads(cold)
            else:
                results = self._run_processes(module, cold)
            for batch in results:
                for fname, matches, stats, summary in batch:
                    solved[fname] = (matches, stats, summary)
            if cache is not None:
                # Process workers cannot consult the store, so they
                # always return a summary; rewriting one that already
                # exists is harmless (content-addressed puts of one key
                # write identical bytes). The serial/thread path returns
                # None for adopted summaries to skip the *recompute*.
                for function in cold:
                    matches, stats, summary = solved[function.name]
                    cache.save(function, matches, stats, summary,
                               self._globals_sig,
                               text=self._canonical.get(function.name))
        # Deterministic merge in module order, hits and fresh solves
        # interleaved — bit-identical to the all-cold report.
        for function in functions:
            entry = warm.get(function.name)
            if entry is not None:
                matches, stats = entry.matches, entry.stats
            else:
                matches, stats, _ = solved[function.name]
            report.matches.extend(matches)
            report.stats.merge(stats)
        return report

    # -- serial / thread execution ---------------------------------------------
    def _detect_batch(self, functions: list[Function]) -> list[tuple]:
        cache = self.detector.cache
        out = []
        for function in functions:
            analyses = FunctionAnalyses(function)
            adopted = False
            if cache is not None:
                # Body-keyed summaries survive config changes: a re-solve
                # under new limits / idiom sets still skips re-deriving
                # the feasibility-signature inputs.
                summary = cache.load_summary(
                    function, self._canonical.get(function.name))
                if summary is not None:
                    analyses.adopt_summary(summary)
                    adopted = True
            self.analyses[function.name] = analyses
            matches, stats = self.detector.detect_function_with_stats(
                function, analyses)
            # An adopted summary is already in the store — returning None
            # keeps save() from recomputing (loop info) and rewriting it.
            out.append((function.name, matches, stats,
                        None if adopted or cache is None
                        else analyses.summary()))
        return out

    def _batches(self, functions: list[Function]) -> list[list[Function]]:
        size = self.batch_size
        if size is None:
            # Small batches load-balance; at least one per worker.
            size = max(1, -(-len(functions) // (self.workers * 4)))
        return [functions[i:i + size]
                for i in range(0, len(functions), size)]

    def _run_threads(self, functions: list[Function]) -> list[list[tuple]]:
        batches = self._batches(functions)
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            # Executor.map preserves argument order: deterministic merge.
            return list(pool.map(self._detect_batch, batches))

    # -- process execution -------------------------------------------------------
    def _run_processes(self, module: Module,
                       functions: list[Function]) -> list[list[tuple]]:
        detector = self.detector
        if not detector.standard_library:
            raise IDLError(
                "process-mode detection supports the standard idiom "
                "library only (workers rebuild the detector from "
                "configuration); use mode='thread' for custom compilers")
        ir_text = print_module(module)
        config = (tuple(detector.idioms),
                  detector.limits.max_solutions, detector.limits.max_steps,
                  detector.ordering, detector.memo, detector.indexed)
        payloads = [(ir_text, [f.name for f in batch], config)
                    for batch in self._batches(functions)]
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            encoded_batches = list(pool.map(_process_batch, payloads))
        results = []
        for encoded in encoded_batches:
            batch = []
            for fname, enc_matches, stats, summary in encoded:
                function = module.functions[fname]
                matches = [
                    IdiomMatch(idiom, function,
                               decode_solution(enc_sol, function, module),
                               stats=match_stats)
                    for idiom, enc_sol, match_stats in enc_matches]
                batch.append((fname, matches, stats, summary))
            results.append(batch)
        return results


# ---------------------------------------------------------------------------
# Solution wire format (process mode)
# ---------------------------------------------------------------------------
# The printer/parser round-trip preserves structure, so (block index,
# instruction index) identifies the same instruction in both copies.

def encode_value(value, function: Function) -> tuple:
    if isinstance(value, Instruction):
        block = value.parent
        return ("i", function.blocks.index(block),
                block.instructions.index(value))
    if isinstance(value, Argument):
        return ("a", function.args.index(value))
    if isinstance(value, GlobalVariable):
        return ("g", value.name)
    if isinstance(value, ConstantInt):
        return ("ci", str(value.type), value.value)
    if isinstance(value, ConstantFloat):
        return ("cf", str(value.type), value.value)
    raise IDLError(
        f"cannot serialize solution value {value!r} for process-mode "
        f"detection")


def decode_value(token: tuple, function: Function, module: Module):
    kind = token[0]
    if kind == "i":
        return function.blocks[token[1]].instructions[token[2]]
    if kind == "a":
        return function.args[token[1]]
    if kind == "g":
        return module.globals[token[1]]
    if kind == "ci":
        return ConstantInt(parse_type(token[1]), token[2])
    if kind == "cf":
        return ConstantFloat(parse_type(token[1]), token[2])
    raise IDLError(f"unknown solution token {token!r}")


def encode_solution(solution: dict, function: Function) -> list[tuple]:
    return [(name, encode_value(value, function))
            for name, value in solution.items()]


def decode_solution(encoded: list[tuple], function: Function,
                    module: Module) -> dict:
    return {name: decode_value(token, function, module)
            for name, token in encoded}


# -- worker side --------------------------------------------------------------
_WORKER_CACHE: dict = {}


def _worker_detector(config: tuple):
    from .detector import IdiomDetector

    detector = _WORKER_CACHE.get(("detector", config))
    if detector is None:
        idioms, max_solutions, max_steps, ordering, memo, indexed = config
        detector = IdiomDetector(
            idioms=list(idioms),
            limits=SolveLimits(max_solutions=max_solutions,
                               max_steps=max_steps),
            ordering=ordering, memo=memo, indexed=indexed)
        _WORKER_CACHE[("detector", config)] = detector
    return detector


def _worker_module(ir_text: str) -> Module:
    from ..ir.parser import parse_module

    if _WORKER_CACHE.get("module_text") != ir_text:
        _WORKER_CACHE["module_text"] = ir_text
        _WORKER_CACHE["module"] = parse_module(ir_text)
        _WORKER_CACHE["analyses"] = {}
    return _WORKER_CACHE["module"]


def _process_batch(payload: tuple) -> list[tuple]:
    """Detect one batch of functions inside a worker process.

    The worker also digests each function's analyses into a serializable
    summary — the caller cannot (it never built analyses for functions it
    shipped out), and the artifact cache persists the summary alongside
    the matches."""
    ir_text, fnames, config = payload
    detector = _worker_detector(config)
    module = _worker_module(ir_text)
    analyses_cache: dict[str, FunctionAnalyses] = _WORKER_CACHE["analyses"]
    out = []
    for fname in fnames:
        function = module.functions[fname]
        analyses = analyses_cache.get(fname)
        if analyses is None:
            analyses = analyses_cache[fname] = FunctionAnalyses(function)
        matches, stats = detector.detect_function_with_stats(
            function, analyses)
        enc_matches = [
            (m.idiom, encode_solution(m.solution, function), m.stats)
            for m in matches]
        out.append((fname, enc_matches, stats,
                    analyses.summary().as_dict()))
    return out
