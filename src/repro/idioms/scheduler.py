"""Detection scheduling: one compiled plan set, batched functions, a
supervised worker pool.

A :class:`DetectionSession` is the unit of repository-scale detection the
ROADMAP's scaling work builds on: it compiles every idiom's execution plan
once, shares one :class:`FunctionAnalyses` per function across all idioms,
batches the module's functions, and fans the batches out over a
``concurrent.futures`` pool. Results are merged back in module order, so a
parallel session produces a :class:`DetectionReport` identical to the
sequential one — same matches, same order.

Two pool flavours:

* ``mode="thread"`` shares the IR in place; matches reference the caller's
  objects directly.
* ``mode="process"`` ships each batch as textual IR (the printer/parser
  round-trip preserves block and instruction order), detects in the worker
  process, and sends solutions back as structural locators that are decoded
  against the caller's module — so even process-mode matches point at the
  caller's IR objects. Only the standard idiom library is supported there,
  because workers rebuild the detector from configuration alone.

Execution is **supervised** (:mod:`repro.reliability.supervisor`): every
function gets a wall-clock deadline (``deadline_s``, in-band via
:class:`~repro.errors.SolveTimeout` plus out-of-band batch timeouts in
process mode), transient worker failures are retried with backoff
(``max_retries``), a dead worker pool is respawned for just the unfinished
functions, and a tier that keeps failing degrades process → thread →
serial. The session always returns a complete report — every function
appears, in module order — and ``report.outcomes`` /
``session.outcomes`` records what it took per function (ok, cache-hit,
retried, timed-out-partial, degraded).

When the detector carries an artifact cache (:mod:`repro.cache`), the
session consults it *before* scheduling: every function whose fingerprint
has a stored entry is served from disk (matches decoded against the
caller's IR, solve stats restored), and only the remaining functions are
batched out to workers — whatever the pool flavour. Freshly solved
functions are written back — except timed-out partial results, which must
never be served as the function's truth later — and hits and fresh solves
are merged in module order, so the report is bit-identical to a cold
run's: same matches, same order, same aggregated stats.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ProcessPoolExecutor

from ..analysis.info import FunctionAnalyses
from ..errors import IDLError
from ..idl.solver import SolveLimits, SolverStats
from ..ir.instructions import Instruction
from ..ir.module import Function, Module
from ..ir.printer import print_module
from ..ir.types import parse_type
from ..ir.values import Argument, ConstantFloat, ConstantInt, GlobalVariable
from ..reliability import faults
from ..reliability.supervisor import (
    FunctionOutcome,
    RetryPolicy,
    SessionOutcomes,
    Supervisor,
)
from .matches import DetectionReport, IdiomMatch


class InflightLedger:
    """Cross-request in-flight dedupe for concurrent detection sessions.

    The serving layer's second dedupe tier (the first is the store): when
    two tenants submit the same function while the first solve is still
    running, the second session must *await the first's future*, not
    re-solve. The ledger maps a function's content fingerprint to a
    future resolving to its :func:`~repro.cache.detection.encode_detection`
    payload — structural, so any session can decode it against its own
    module's IR objects.

    Protocol: :meth:`claim` returns ``(is_owner, future)``. The owner
    solves and must :meth:`publish` the payload (or None when the result
    cannot be replayed — waiters then solve locally); publishing pops the
    key, so the in-flight window is exactly the solve's duration and the
    store takes over afterwards. ``publish`` is idempotent per claim,
    letting owners publish None from a ``finally`` as a no-deadlock
    backstop."""

    def __init__(self, wait_s: float = 120.0):
        #: How long a waiter blocks on an owner before giving up and
        #: solving locally (a safety valve, not a correctness knob).
        self.wait_s = wait_s
        self._lock = threading.Lock()
        self._futures: dict[str, Future] = {}

    def claim(self, key: str) -> tuple[bool, Future]:
        with self._lock:
            future = self._futures.get(key)
            if future is not None:
                return False, future
            future = Future()
            self._futures[key] = future
            return True, future

    def publish(self, key: str, payload: dict | None) -> None:
        with self._lock:
            future = self._futures.pop(key, None)
        if future is not None:
            future.set_result(payload)

    def pending(self) -> int:
        with self._lock:
            return len(self._futures)


class _Job:
    """One function of one module inside a cross-module fan-out.

    ``uid`` doubles as the supervisor-facing ``name`` — function names
    collide across tenants' modules, so supervisor bookkeeping (and the
    session's ``analyses`` map) key on the module-qualified uid."""

    __slots__ = ("uid", "function", "module", "index", "text",
                 "globals_sig", "key")

    def __init__(self, uid, function, module, index, text, globals_sig,
                 key):
        self.uid = uid
        self.function = function
        self.module = module
        self.index = index
        self.text = text
        self.globals_sig = globals_sig
        self.key = key

    @property
    def name(self) -> str:
        return self.uid


class DetectionSession:
    """Shared-plan, batched, supervised, optionally parallel detection."""

    def __init__(self, detector=None, workers: int = 1,
                 mode: str = "thread", batch_size: int | None = None,
                 deadline_s: float | None = None, max_retries: int = 2,
                 backoff_s: float = 0.05):
        if detector is None:
            from .detector import IdiomDetector

            detector = IdiomDetector()
        if mode not in ("thread", "process"):
            raise IDLError(f"unknown detection mode {mode!r}")
        if mode == "process" and not detector.standard_library:
            # Fail at construction, not first use: a process session with
            # a custom compiler would otherwise silently run the standard
            # library (workers rebuild the detector from configuration).
            raise IDLError(
                "process-mode detection supports the standard idiom "
                "library only (workers rebuild the detector from "
                "configuration); use mode='thread' for custom compilers")
        self.detector = detector
        self.workers = max(1, int(workers))
        self.mode = mode
        self.batch_size = batch_size
        self.policy = RetryPolicy(deadline_s=deadline_s,
                                  max_retries=max(0, int(max_retries)),
                                  backoff_s=backoff_s)
        #: Per-function reliability records for the most recent detect()
        #: call (also attached to the report as ``report.outcomes``).
        self.outcomes = SessionOutcomes()
        #: FunctionAnalyses per function name, reset and refilled by each
        #: detect() call (thread/serial modes; process workers keep theirs)
        #: for reuse by later pipeline stages. Cache-served functions have
        #: no entry — nothing was analysed for them.
        self.analyses: dict[str, FunctionAnalyses] = {}
        #: Artifact-cache accounting for the most recent detect() call:
        #: functions served from the store vs actually solved (always 0 /
        #: all-functions without a cache).
        self.cache_hits = 0
        self.cache_misses = 0
        #: detect_many() dedupe accounting: functions replayed from an
        #: identical function solved in the same fan-out / from another
        #: session's in-flight future, and functions actually solved.
        self.dedupe_hits = 0
        self.inflight_hits = 0
        self.solved_functions = 0
        self._globals_sig: str | None = None
        #: Canonical text per function name, printed once per detect()
        #: call and shared by every fingerprint derived from it.
        self._canonical: dict[str, str] = {}

    # -- public API ---------------------------------------------------------------
    def detect(self, module: Module) -> DetectionReport:
        functions = [f for f in module.functions.values()
                     if not f.is_declaration()]
        report = DetectionReport(module.name)
        self.analyses = {}
        self.cache_hits = self.cache_misses = 0
        self.dedupe_hits = self.inflight_hits = self.solved_functions = 0
        self._globals_sig = None
        self.outcomes = SessionOutcomes()
        report.outcomes = self.outcomes
        if not functions:
            return report
        plan = faults.active_plan()
        fired_before = len(plan.fired) if plan is not None else 0
        cache = self.detector.cache
        warm: dict[str, object] = {}
        self._canonical = {}
        if cache is not None:
            from ..cache.fingerprint import globals_signature
            from ..ir.printer import print_function_canonical

            self._globals_sig = globals_signature(module)
            for function in functions:
                text = print_function_canonical(function)
                self._canonical[function.name] = text
                entry = cache.load(function, module, self._globals_sig,
                                   text)
                if entry is not None:
                    warm[function.name] = entry
            cold = [f for f in functions if f.name not in warm]
            self.cache_hits = len(warm)
        else:
            cold = functions
        self.cache_misses = self.solved_functions = len(cold)
        for name in warm:
            self.outcomes.record(
                FunctionOutcome(name, "cache-hit", "cache", attempts=0))
        solved: dict[str, tuple] = {}
        if cold:
            # Lower and plan every idiom up front, whatever the ordering:
            # workers must only read the compiler caches (the shared
            # Lowerer's memo machinery, like the forest builder, is not
            # safe to run concurrently).
            self.detector.compiler.prepare(
                self.detector.idioms, memo=self.detector.memo,
                forest=self.detector.ordering == "forest")
            mode = "serial" if self.workers <= 1 else self.mode
            supervisor = Supervisor(self.policy, self.outcomes,
                                    mode=mode, workers=self.workers)
            kwargs = self._process_callbacks(module) \
                if mode == "process" else {}
            rows = supervisor.run(cold, self._solve_one, self._batches,
                                  **kwargs)
            for fname, matches, stats, summary in rows.values():
                solved[fname] = (matches, stats, summary)
            self._record_outcomes(cold, solved, supervisor)
            if cache is not None:
                # Process workers cannot consult the store, so they
                # always return a summary; rewriting one that already
                # exists is harmless (content-addressed puts of one key
                # write identical bytes). The serial/thread path returns
                # None for adopted summaries to skip the *recompute*.
                for function in cold:
                    matches, stats, summary = solved[function.name]
                    if stats.timed_out:
                        continue
                    cache.save(function, matches, stats, summary,
                               self._globals_sig,
                               text=self._canonical.get(function.name))
        if plan is not None:
            for event in plan.fired[fired_before:]:
                self.outcomes.note_fault(
                    "fault injected at {site} (kind {kind}, occurrence "
                    "{occurrence}, epoch {epoch}, key {key!r})"
                    .format(**event))
        # Deterministic merge in module order, hits and fresh solves
        # interleaved — bit-identical to the all-cold report.
        for function in functions:
            entry = warm.get(function.name)
            if entry is not None:
                matches, stats = entry.matches, entry.stats
            else:
                matches, stats, _ = solved[function.name]
            report.matches.extend(matches)
            report.stats.merge(stats)
        return report

    def detect_many(self, modules, dedupe: bool = True,
                    inflight: InflightLedger | None = None
                    ) -> list[DetectionReport]:
        """Detect across several modules in ONE supervised fan-out — the
        serving layer's micro-batch unit.

        All modules' cold functions are batched into a single worker-pool
        run (process batches stay module-homogeneous; uids disambiguate
        colliding function names). Three dedupe tiers serve a function
        without solving it, every one replaying the same structural wire
        format so each module's report still references its own IR
        objects:

        1. the artifact store (when the detector carries a cache),
        2. ``dedupe=True``: identical functions *within this fan-out* —
           one representative per content fingerprint is solved, the
           rest decode its encoded result (cross-tenant overlap),
        3. ``inflight``: fingerprints another session is solving right
           now — this session awaits that future instead of re-solving.

        Results that cannot be replayed (timed-out partials, unencodable
        bindings) fall back to a local solve, so dedupe can degrade but
        never change a report. Per-module reports are merged in module
        order and are bit-identical to per-module :meth:`detect` calls.
        """
        from ..cache.detection import decode_detection, encode_detection
        from ..cache.fingerprint import (
            function_fingerprint,
            globals_signature,
        )
        from ..ir.printer import print_function_canonical

        modules = list(modules)
        self.analyses = {}
        self.cache_hits = self.cache_misses = 0
        self.dedupe_hits = self.inflight_hits = self.solved_functions = 0
        self.outcomes = SessionOutcomes()
        cache = self.detector.cache
        config_sig = self.detector.config_signature()

        results: dict[str, tuple] = {}  # uid -> (matches, stats)
        jobs_by_module: list[list[_Job]] = []
        cold: list[_Job] = []
        for index, module in enumerate(modules):
            globals_sig = globals_signature(module)
            module_jobs: list[_Job] = []
            for function in module.functions.values():
                if function.is_declaration():
                    continue
                text = print_function_canonical(function)
                key = function_fingerprint(function, config_sig,
                                           globals_sig, text)
                job = _Job(f"m{index}:{function.name}", function, module,
                           index, text, globals_sig, key)
                module_jobs.append(job)
                entry = cache.load(function, module, globals_sig, text) \
                    if cache is not None else None
                if entry is not None:
                    results[job.uid] = (entry.matches, entry.stats)
                    self.outcomes.record(FunctionOutcome(
                        job.uid, "cache-hit", "cache", attempts=0))
                else:
                    cold.append(job)
            jobs_by_module.append(module_jobs)
        self.cache_hits = len(results)
        self.cache_misses = len(cold)

        # Tier 2/3 grouping: one group per content fingerprint. Without
        # dedupe every job is its own group (the "!" prefix keeps two
        # identical functions apart and out of any shared ledger key).
        groups: dict[str, list[_Job]] = {}
        for position, job in enumerate(cold):
            group_key = job.key if dedupe else f"!{position}:{job.key}"
            groups.setdefault(group_key, []).append(job)
        owned: set[str] = set()
        waiting: dict[str, Future] = {}
        if inflight is not None and dedupe:
            for group_key in groups:
                is_owner, future = inflight.claim(group_key)
                if is_owner:
                    owned.add(group_key)
                else:
                    waiting[group_key] = future
        scheduled = [group[0] for group_key, group in groups.items()
                     if group_key not in waiting]

        solved: dict[str, tuple] = {}  # uid -> (matches, stats, summary)
        try:
            if scheduled:
                self.detector.compiler.prepare(
                    self.detector.idioms, memo=self.detector.memo,
                    forest=self.detector.ordering == "forest")
                mode = "serial" if self.workers <= 1 else self.mode
                supervisor = Supervisor(self.policy, self.outcomes,
                                        mode=mode, workers=self.workers)
                kwargs = self._job_callbacks(scheduled) \
                    if mode == "process" else {}
                rows = supervisor.run(scheduled, self._solve_job,
                                      self._job_batches, **kwargs)
                for uid, matches, stats, summary in rows.values():
                    solved[uid] = (matches, stats, summary)
                self._record_outcomes(scheduled, solved, supervisor)
                self.solved_functions += len(scheduled)

            for group_key, group in groups.items():
                if group_key in waiting:
                    continue
                representative = group[0]
                matches, stats, summary = solved[representative.uid]
                results[representative.uid] = (matches, stats)
                if cache is not None and not stats.timed_out:
                    cache.save(representative.function, matches, stats,
                               summary, representative.globals_sig,
                               text=representative.text)
                payload = None
                if len(group) > 1 or group_key in owned:
                    payload = encode_detection(representative.function,
                                               matches, stats)
                if group_key in owned:
                    inflight.publish(group_key, payload)
                for duplicate in group[1:]:
                    self._serve_job(duplicate, payload, results,
                                    "dedupe-hit")
        finally:
            if inflight is not None:
                # Backstop: resolve any future this session still owns
                # (solve failed before publishing) so waiters elsewhere
                # fall back to their own solve instead of deadlocking.
                for group_key in owned:
                    inflight.publish(group_key, None)

        for group_key, future in waiting.items():
            try:
                payload = future.result(timeout=inflight.wait_s)
            except Exception:
                payload = None
            for job in groups[group_key]:
                self._serve_job(job, payload, results, "inflight-hit")

        reports = []
        for module, module_jobs in zip(modules, jobs_by_module):
            report = DetectionReport(module.name)
            report.outcomes = self.outcomes
            for job in module_jobs:
                matches, stats = results[job.uid]
                report.matches.extend(matches)
                report.stats.merge(stats)
            reports.append(report)
        return reports

    def _serve_job(self, job: _Job, payload: dict | None,
                   results: dict, status: str) -> None:
        """Serve one deduped job from an encoded payload, falling back
        to a local serial solve (recorded, cached) when the payload is
        missing or does not decode."""
        from ..cache.detection import decode_detection

        if payload is not None:
            try:
                entry = decode_detection(payload, job.function, job.module)
            except (IDLError, KeyError, IndexError, TypeError, ValueError):
                entry = None
            if entry is not None:
                results[job.uid] = (entry.matches, entry.stats)
                if status == "inflight-hit":
                    self.inflight_hits += 1
                else:
                    self.dedupe_hits += 1
                self.outcomes.record(FunctionOutcome(
                    job.uid, status, "dedupe", attempts=0))
                return
        uid, matches, stats, summary = self._solve_job(job)
        results[uid] = (matches, stats)
        self.solved_functions += 1
        cache = self.detector.cache
        if cache is not None and not stats.timed_out:
            cache.save(job.function, matches, stats, summary,
                       job.globals_sig, text=job.text)
        self.outcomes.record(FunctionOutcome(uid, "ok", "serial"))

    # -- solving primitives -------------------------------------------------------
    def _solve_one(self, function: Function, epoch: int = 0) -> tuple:
        """Solve one function in-process (the serial/thread-tier unit)."""
        faults.maybe_fire("worker.solve", function.name)
        cache = self.detector.cache
        analyses = FunctionAnalyses(function)
        adopted = False
        if cache is not None:
            # Body-keyed summaries survive config changes: a re-solve
            # under new limits / idiom sets still skips re-deriving the
            # feasibility-signature inputs.
            summary = cache.load_summary(
                function, self._canonical.get(function.name))
            if summary is not None:
                analyses.adopt_summary(summary)
                adopted = True
        self.analyses[function.name] = analyses
        matches, stats = self.detector.detect_function_with_stats(
            function, analyses, deadline_s=self.policy.deadline_s)
        # An adopted summary is already in the store — returning None
        # keeps save() from recomputing (loop info) and rewriting it.
        return (function.name, matches, stats,
                None if adopted or cache is None else analyses.summary())

    def _batches(self, functions: list[Function]) -> list[list[Function]]:
        size = self.batch_size
        if size is None:
            # Small batches load-balance; at least one per worker.
            size = max(1, -(-len(functions) // (self.workers * 4)))
        return [functions[i:i + size]
                for i in range(0, len(functions), size)]

    def _solve_job(self, job: _Job, epoch: int = 0) -> tuple:
        """Solve one cross-module job in-process (detect_many's
        serial/thread-tier unit; rows are keyed by uid, not name)."""
        function = job.function
        faults.maybe_fire("worker.solve", function.name)
        cache = self.detector.cache
        analyses = FunctionAnalyses(function)
        adopted = False
        if cache is not None:
            summary = cache.load_summary(function, job.text)
            if summary is not None:
                analyses.adopt_summary(summary)
                adopted = True
        self.analyses[job.uid] = analyses
        matches, stats = self.detector.detect_function_with_stats(
            function, analyses, deadline_s=self.policy.deadline_s)
        return (job.uid, matches, stats,
                None if adopted or cache is None else analyses.summary())

    def _job_batches(self, jobs: list[_Job]) -> list[list[_Job]]:
        """detect_many's load-balancing split. Batches never mix modules
        — the process tier ships one module's textual IR per batch."""
        by_module: dict[int, list[_Job]] = {}
        for job in jobs:
            by_module.setdefault(job.index, []).append(job)
        size = self.batch_size
        if size is None:
            size = max(1, -(-len(jobs) // (self.workers * 4)))
        batches: list[list[_Job]] = []
        for group in by_module.values():
            batches.extend(group[i:i + size]
                           for i in range(0, len(group), size))
        return batches

    def _job_callbacks(self, jobs: list[_Job]) -> dict:
        """Process-tier callbacks for a cross-module fan-out: each batch
        ships its own module's wire text plus the jobs' uids, which the
        worker echoes back so rows decode against the right module even
        when tenants' function names collide."""
        detector = self.detector
        texts: dict[int, str] = {}
        for job in jobs:
            if job.index not in texts:
                texts[job.index] = print_module(job.module)
        by_uid = {job.uid: job for job in jobs}
        config = (tuple(detector.idioms),
                  detector.limits.max_solutions, detector.limits.max_steps,
                  detector.ordering, detector.memo, detector.indexed)
        deadline_s = self.policy.deadline_s
        plan = faults.active_plan()
        plan_spec = plan.as_spec() if plan is not None else None

        def process_pool(workers: int, epoch: int):
            return ProcessPoolExecutor(
                max_workers=workers, initializer=_worker_init,
                initargs=(plan_spec, epoch))

        def process_submit(pool, batch, epoch):
            tags = [job.uid for job in batch]
            inner = (texts[batch[0].index],
                     [job.function.name for job in batch],
                     config, deadline_s)
            return pool.submit(_process_batch_tagged, (tags, inner))

        def process_decode(raw) -> list[tuple]:
            rows = []
            for uid, enc_matches, stats, summary in raw:
                job = by_uid[uid]
                matches = [
                    IdiomMatch(idiom, job.function,
                               decode_solution(enc_sol, job.function,
                                               job.module),
                               stats=match_stats)
                    for idiom, enc_sol, match_stats in enc_matches]
                rows.append((uid, matches, stats, summary))
            return rows

        return {"process_pool": process_pool,
                "process_submit": process_submit,
                "process_decode": process_decode}

    def _record_outcomes(self, cold, solved, supervisor) -> None:
        for function in cold:
            fname = function.name
            _, stats, _ = solved[fname]
            meta = supervisor.meta.get(fname, {})
            seen = tuple(meta.get("faults", ()))
            # Completions plus failed attempts the supervisor charged to
            # this function's batches.
            attempts = max(1, meta.get("attempts", 0) + len(seen))
            if getattr(stats, "timed_out", False):
                status = "timed-out-partial"
            elif meta.get("degraded"):
                status = "degraded"
            elif attempts > 1:
                status = "retried"
            else:
                status = "ok"
            self.outcomes.record(FunctionOutcome(
                fname, status, meta.get("tier") or "serial",
                attempts=attempts, faults=seen))

    # -- process execution -------------------------------------------------------
    def _process_callbacks(self, module: Module) -> dict:
        """The pool-factory / submit / decode triple the supervisor's
        process tier drives; closes over the module's wire form."""
        detector = self.detector
        ir_text = print_module(module)
        config = (tuple(detector.idioms),
                  detector.limits.max_solutions, detector.limits.max_steps,
                  detector.ordering, detector.memo, detector.indexed)
        deadline_s = self.policy.deadline_s
        plan = faults.active_plan()
        plan_spec = plan.as_spec() if plan is not None else None

        def process_pool(workers: int, epoch: int):
            return ProcessPoolExecutor(
                max_workers=workers, initializer=_worker_init,
                initargs=(plan_spec, epoch))

        def process_submit(pool, batch, epoch):
            return pool.submit(
                _process_batch,
                (ir_text, [f.name for f in batch], config, deadline_s))

        def process_decode(raw) -> list[tuple]:
            rows = []
            for fname, enc_matches, stats, summary in raw:
                function = module.functions[fname]
                matches = [
                    IdiomMatch(idiom, function,
                               decode_solution(enc_sol, function, module),
                               stats=match_stats)
                    for idiom, enc_sol, match_stats in enc_matches]
                rows.append((fname, matches, stats, summary))
            return rows

        return {"process_pool": process_pool,
                "process_submit": process_submit,
                "process_decode": process_decode}


# ---------------------------------------------------------------------------
# Solution wire format (process mode)
# ---------------------------------------------------------------------------
# The printer/parser round-trip preserves structure, so (block index,
# instruction index) identifies the same instruction in both copies.

def encode_value(value, function: Function) -> tuple:
    if isinstance(value, Instruction):
        block = value.parent
        return ("i", function.blocks.index(block),
                block.instructions.index(value))
    if isinstance(value, Argument):
        return ("a", function.args.index(value))
    if isinstance(value, GlobalVariable):
        return ("g", value.name)
    if isinstance(value, ConstantInt):
        return ("ci", str(value.type), value.value)
    if isinstance(value, ConstantFloat):
        return ("cf", str(value.type), value.value)
    raise IDLError(
        f"cannot serialize solution value {value!r} for process-mode "
        f"detection")


def decode_value(token: tuple, function: Function, module: Module):
    kind = token[0]
    if kind == "i":
        return function.blocks[token[1]].instructions[token[2]]
    if kind == "a":
        return function.args[token[1]]
    if kind == "g":
        return module.globals[token[1]]
    if kind == "ci":
        return ConstantInt(parse_type(token[1]), token[2])
    if kind == "cf":
        return ConstantFloat(parse_type(token[1]), token[2])
    raise IDLError(f"unknown solution token {token!r}")


def encode_solution(solution: dict, function: Function) -> list[tuple]:
    return [(name, encode_value(value, function))
            for name, value in solution.items()]


def decode_solution(encoded: list[tuple], function: Function,
                    module: Module) -> dict:
    return {name: decode_value(token, function, module)
            for name, token in encoded}


# -- worker side --------------------------------------------------------------
_WORKER_CACHE: dict = {}


def _worker_init(plan_spec, epoch: int) -> None:
    """Pool-worker initializer: arm fault injection inside the worker.

    The parent's installed plan (if any) ships as its JSON spec with the
    current retry epoch, so a respawned pool starts at the epoch the
    supervisor reached — a crash spec scoped to epoch 0 does not re-fire
    after the respawn. ``mark_worker`` lets ``crash`` faults genuinely
    ``os._exit`` here (the parent observes ``BrokenProcessPool``)."""
    faults.mark_worker(True)
    if plan_spec is not None:
        faults.install_plan(plan_spec, epoch=epoch)
    faults.maybe_fire("worker.spawn")


def _worker_detector(config: tuple):
    from .detector import IdiomDetector

    detector = _WORKER_CACHE.get(("detector", config))
    if detector is None:
        idioms, max_solutions, max_steps, ordering, memo, indexed = config
        detector = IdiomDetector(
            idioms=list(idioms),
            limits=SolveLimits(max_solutions=max_solutions,
                               max_steps=max_steps),
            ordering=ordering, memo=memo, indexed=indexed)
        _WORKER_CACHE[("detector", config)] = detector
    return detector


#: Parsed modules a pool worker keeps resident. One slot was enough when
#: every session spanned one module; detect_many interleaves batches from
#: several tenants' modules through one pool, and re-parsing on every
#: module switch would forfeit the residency the service exists for.
_WORKER_MODULES_MAX = 8


def _worker_module(ir_text: str) -> tuple:
    """(module, analyses dict) for one wire text, LRU-cached per worker."""
    from ..ir.parser import parse_module

    modules: dict[str, tuple] = _WORKER_CACHE.setdefault("modules", {})
    entry = modules.get(ir_text)
    if entry is None:
        while len(modules) >= _WORKER_MODULES_MAX:
            modules.pop(next(iter(modules)))
        entry = modules[ir_text] = (parse_module(ir_text), {})
    else:
        modules[ir_text] = modules.pop(ir_text)  # refresh recency
    return entry


def _process_batch(payload: tuple) -> list[tuple]:
    """Detect one batch of functions inside a worker process.

    The worker also digests each function's analyses into a serializable
    summary — the caller cannot (it never built analyses for functions it
    shipped out), and the artifact cache persists the summary alongside
    the matches."""
    ir_text, fnames, config, deadline_s = payload
    detector = _worker_detector(config)
    module, analyses_cache = _worker_module(ir_text)
    out = []
    for fname in fnames:
        faults.maybe_fire("worker.solve", fname)
        function = module.functions[fname]
        analyses = analyses_cache.get(fname)
        if analyses is None:
            analyses = analyses_cache[fname] = FunctionAnalyses(function)
        matches, stats = detector.detect_function_with_stats(
            function, analyses, deadline_s=deadline_s)
        enc_matches = [
            (m.idiom, encode_solution(m.solution, function), m.stats)
            for m in matches]
        out.append((fname, enc_matches, stats,
                    analyses.summary().as_dict()))
    return out


def _process_batch_tagged(payload: tuple) -> list[tuple]:
    """detect_many's process unit: :func:`_process_batch` with
    caller-chosen row tags (module-qualified uids) echoed back in place
    of function names, so one fan-out can span modules whose function
    names collide."""
    tags, inner = payload
    rows = _process_batch(inner)
    return [(tag,) + row[1:] for tag, row in zip(tags, rows)]
