"""The IDL idiom library (the paper's §4, Figures 9-14).

Written in IDL itself, mirroring the paper's structure: generic building
blocks (SESE, For, ForNest, vector/matrix accesses, ReadRange, OffsetIndex,
InductionVar, ConditionalReadModifyWrite, DotProductLoop) composed into the
five computational idioms the paper evaluates — scalar Reduction,
generalized Histogram, SPMV, GEMM and Stencils — plus the Figure-2
FactorizationOpportunity demonstration.

Differences from the paper's (unpublished) library are deliberate and
documented in DESIGN.md: Concat and KernelFunction are native constraints;
stencils are per-dimension (Stencil1D/2D/3D) instead of one rank-generic
definition.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Building blocks
# ---------------------------------------------------------------------------

SESE_IDL = """
Constraint SESE
( {precursor} is branch instruction and
  {precursor} has control flow to {begin} and
  {end} is branch instruction and
  {end} has control flow to {successor} and
  {begin} control flow dominates {end} and
  {end} control flow post dominates {begin} and
  {precursor} strictly control flow dominates {begin} and
  {successor} strictly control flow post dominates {end} and
  all control flow from {begin} to {precursor} passes through {end} and
  all control flow from {successor} to {end} passes through {begin} )
End
"""

FOR_IDL = """
Constraint For
( inherits SESE and
  {iterator} is phi instruction and
  {begin} control flow dominates {iterator} and
  {iterator} control flow dominates {end} and
  {latch} is branch instruction and
  {latch} has control flow to {begin} and
  {iter_begin} reaches phi node {iterator} from {precursor} and
  {increment} reaches phi node {iterator} from {latch} and
  {increment} is add instruction and
  {iterator} is first argument of {increment} and
  {step} is second argument of {increment} and
  {comparison} is icmp instruction and
  {iterator} is first argument of {comparison} and
  {iter_end} is second argument of {comparison} and
  {comparison} is first argument of {end} and
  {end} has control flow to {body.begin} and
  {body.begin} is not the same as {successor} )
End
"""

FORNEST_IDL = """
Constraint ForNest
( ( inherits For at {loop[i]} ) for all i = 0 .. N-1 and
  ( {loop[i].body.begin} control flow dominates {loop[i+1].begin}
  ) for all i = 0 .. N-2 and
  ( {iterator[i]} is the same as {loop[i].iterator} ) for all i = 0 .. N-1 and
  {begin} is the same as {loop[0].begin} and
  {end} is the same as {loop[0].end} )
End
"""

# An index that may pass through a sign extension (clang emits sext when
# 32-bit indices meet 64-bit addressing; our front end keeps natural widths,
# so both shapes occur in the wild and both must match — cf. paper Fig. 5
# binding iter_begin to a sext result).
SEXTABLE_IDL = """
Constraint Sextable
( {out} is the same as {in} or
  ( {out} is sext instruction and
    {in} is first argument of {out} ) )
End
"""

VECTOR_READ_FLAT_IDL = """
Constraint VectorReadFlat
( {address} is gep instruction and
  {base_pointer} is first argument of {address} and
  {base_pointer} is pointer and
  inherits Sextable
  with {stride_idx} as {out} and {idx} as {in} and
  {stride_idx} is second argument of {address} and
  {value} is load instruction and
  {address} is first argument of {value} and
  {base_pointer} strictly control flow dominates {begin} )
End
"""

# Nested-array reads whose innermost index is the vector index: a[j][idx],
# a[i][j][idx]. Leading indices are unconstrained (bound from the geps).
VECTOR_READ_ARR2_IDL = """
Constraint VectorReadArr2
( {gep1} is gep instruction and
  {base_pointer} is first argument of {gep1} and
  {address} is gep instruction and
  {gep1} is first argument of {address} and
  {zero2} is second argument of {address} and
  {zero2} is integer constant zero and
  inherits Sextable
  with {stride_idx} as {out} and {idx} as {in} and
  {stride_idx} is third argument of {address} and
  {value} is load instruction and
  {address} is first argument of {value} and
  {base_pointer} strictly control flow dominates {begin} )
End
"""

VECTOR_READ_ARR3_IDL = """
Constraint VectorReadArr3
( {gep1} is gep instruction and
  {base_pointer} is first argument of {gep1} and
  {gep2} is gep instruction and
  {gep1} is first argument of {gep2} and
  {address} is gep instruction and
  {gep2} is first argument of {address} and
  {zero3} is second argument of {address} and
  {zero3} is integer constant zero and
  inherits Sextable
  with {stride_idx} as {out} and {idx} as {in} and
  {stride_idx} is third argument of {address} and
  {value} is load instruction and
  {address} is first argument of {value} and
  {base_pointer} strictly control flow dominates {begin} )
End
"""

VECTOR_READ_IDL = """
Constraint VectorRead
( inherits VectorReadFlat or
  inherits VectorReadArr2 or
  inherits VectorReadArr3 )
End
"""

VECTOR_STORE_IDL = """
Constraint VectorStore
( {address} is gep instruction and
  {base_pointer} is first argument of {address} and
  {base_pointer} is pointer and
  inherits Sextable
  with {stride_idx} as {out} and {idx} as {in} and
  {stride_idx} is second argument of {address} and
  {store} is store instruction and
  {address} is second argument of {store} and
  {value} is first argument of {store} and
  {base_pointer} strictly control flow dominates {begin} )
End
"""

READ_RANGE_IDL = """
Constraint ReadRange
( {lo_address} is gep instruction and
  {base_pointer} is first argument of {lo_address} and
  inherits Sextable
  with {lo_sidx} as {out} and {idx} as {in} and
  {lo_sidx} is second argument of {lo_address} and
  {lo_load} is load instruction and
  {lo_address} is first argument of {lo_load} and
  inherits Sextable
  with {range_begin} as {out} and {lo_load} as {in} and
  {idx_plus} is add instruction and
  {idx} is first argument of {idx_plus} and
  {one} is second argument of {idx_plus} and
  {one} is integer constant one and
  {hi_address} is gep instruction and
  {base_pointer} is first argument of {hi_address} and
  inherits Sextable
  with {hi_sidx} as {out} and {idx_plus} as {in} and
  {hi_sidx} is second argument of {hi_address} and
  {hi_load} is load instruction and
  {hi_address} is first argument of {hi_load} and
  inherits Sextable
  with {range_end} as {out} and {hi_load} as {in} )
End
"""

INDUCTION_VAR_IDL = """
Constraint InductionVar
( {old_ind} is phi instruction and
  {begin} control flow dominates {old_ind} and
  {old_ind} control flow dominates {end} and
  {new_ind} reaches phi node {old_ind} from {latch} and
  {ind_init} reaches phi node {old_ind} from {precursor} )
End
"""

CRMW_IDL = """
Constraint ConditionalReadModifyWrite
( {read_address} is gep instruction and
  {base_pointer} is first argument of {read_address} and
  inherits Sextable
  with {read_sidx} as {out} and {address} as {in} and
  {read_sidx} is second argument of {read_address} and
  {old_value} is load instruction and
  {read_address} is first argument of {old_value} and
  {write_address} is gep instruction and
  {base_pointer} is first argument of {write_address} and
  inherits Sextable
  with {write_sidx} as {out} and {address} as {in} and
  {write_sidx} is second argument of {write_address} and
  {store} is store instruction and
  {value} is first argument of {store} and
  {write_address} is second argument of {store} and
  {body.begin} control flow dominates {old_value} and
  {body.begin} control flow dominates {store} and
  {old_value} control flow dominates {store} and
  {base_pointer} strictly control flow dominates {begin} )
End
"""

OFFSET_INDEX_IDL = """
Constraint OffsetIndex
( {out} is the same as {base_idx} or
  ( {out} is add instruction and
    {base_idx} is first argument of {out} and
    {offset} is second argument of {out} and
    {offset} is a constant ) or
  ( {out} is sub instruction and
    {base_idx} is first argument of {out} and
    {offset} is second argument of {out} and
    {offset} is a constant ) )
End
"""

# A strict neighbour access: offset is a constant and not zero.
NEIGHBOUR_INDEX_IDL = """
Constraint NeighbourIndex
( ( {out} is add instruction or {out} is sub instruction ) and
  {base_idx} is first argument of {out} and
  {offset} is second argument of {out} and
  {offset} is a constant and
  {offset} is integer constant one )
End
"""

STENCIL_READ_1D_IDL = """
Constraint StencilRead1D
( {address} is gep instruction and
  {base_pointer} is first argument of {address} and
  inherits OffsetIndex
  with {sidx} as {out} and {input} as {base_idx} at {off} and
  {sidx} is second argument of {address} and
  {value} is load instruction and
  {address} is first argument of {value} and
  {base_pointer} strictly control flow dominates {begin} )
End
"""

DOT_PRODUCT_IDL = """
Constraint DotProductLoop
( {acc} is phi instruction and
  {loop.begin} control flow dominates {acc} and
  {acc} control flow dominates {loop.end} and
  {acc} is not the same as {loop.iterator} and
  {mul} is fmul instruction and
  ( ( {src1} is first argument of {mul} and
      {src2} is second argument of {mul} ) or
    ( {src2} is first argument of {mul} and
      {src1} is second argument of {mul} ) ) and
  {acc_next} is fadd instruction and
  ( ( {acc} is first argument of {acc_next} and
      {mul} is second argument of {acc_next} ) or
    ( {mul} is first argument of {acc_next} and
      {acc} is second argument of {acc_next} ) ) and
  {acc_next} reaches phi node {acc} from {loop.latch} and
  {acc_init} reaches phi node {acc} from {loop.precursor} and
  {store} is store instruction and
  {update_address} is second argument of {store} and
  {result} is first argument of {store} and
  ( {result} is the same as {acc} or
    {result} is the same as {acc_next} or
    inherits GemmLinearCombination ) )
End
"""

# C[i][j] = beta * C[i][j] + alpha * acc   (generalized GEMM update)
GEMM_LINEAR_IDL = """
Constraint GemmLinearCombination
( {result} is fadd instruction and
  ( ( {beta_term} is first argument of {result} and
      {alpha_term} is second argument of {result} ) or
    ( {alpha_term} is first argument of {result} and
      {beta_term} is second argument of {result} ) ) and
  {alpha_term} is fmul instruction and
  ( ( {acc} is first argument of {alpha_term} and
      {alpha} is second argument of {alpha_term} ) or
    ( {alpha} is first argument of {alpha_term} and
      {acc} is second argument of {alpha_term} ) ) and
  {beta_term} is fmul instruction and
  ( ( {old_out} is first argument of {beta_term} and
      {beta} is second argument of {beta_term} ) or
    ( {beta} is first argument of {beta_term} and
      {old_out} is second argument of {beta_term} ) ) and
  {old_out} is load instruction and
  {update_address} is first argument of {old_out} )
End
"""

# Matrix access, flattened layout: base[col + row*ld] (either operand order).
MATRIX_READ_FLAT_IDL = """
Constraint MatrixReadFlat
( {flat_idx} is add instruction and
  ( ( {col_sidx} is first argument of {flat_idx} and
      {row_term} is second argument of {flat_idx} ) or
    ( {row_term} is first argument of {flat_idx} and
      {col_sidx} is second argument of {flat_idx} ) ) and
  inherits Sextable
  with {col_sidx} as {out} and {col} as {in} and
  {row_term} is mul instruction and
  ( ( {row_sidx} is first argument of {row_term} and
      {ld} is second argument of {row_term} ) or
    ( {ld} is first argument of {row_term} and
      {row_sidx} is second argument of {row_term} ) ) and
  inherits Sextable
  with {row_sidx} as {out} and {row} as {in} and
  {address} is gep instruction and
  {base_pointer} is first argument of {address} and
  {flat_idx} is second argument of {address} and
  {value} is load instruction and
  {address} is first argument of {value} and
  {base_pointer} strictly control flow dominates {begin} )
End
"""

# Matrix access, nested-array layout: base[a][b] with {a,b} = {col,row} in
# either order (chained geps through a 2-D array object).
MATRIX_READ_2D_IDL = """
Constraint MatrixRead2D
( {outer_gep} is gep instruction and
  {base_pointer} is first argument of {outer_gep} and
  {zero1} is second argument of {outer_gep} and
  {zero1} is integer constant zero and
  {first_idx} is third argument of {outer_gep} and
  {address} is gep instruction and
  {outer_gep} is first argument of {address} and
  {zero2} is second argument of {address} and
  {zero2} is integer constant zero and
  {second_idx} is third argument of {address} and
  ( ( {first_idx} is the same as {col} and
      {second_idx} is the same as {row} ) or
    ( {first_idx} is the same as {row} and
      {second_idx} is the same as {col} ) ) and
  {value} is load instruction and
  {address} is first argument of {value} and
  {base_pointer} strictly control flow dominates {begin} )
End
"""

MATRIX_READ_IDL = """
Constraint MatrixRead
( inherits MatrixReadFlat or inherits MatrixRead2D )
End
"""

MATRIX_STORE_FLAT_IDL = """
Constraint MatrixStoreFlat
( {flat_idx} is add instruction and
  ( ( {col_sidx} is first argument of {flat_idx} and
      {row_term} is second argument of {flat_idx} ) or
    ( {row_term} is first argument of {flat_idx} and
      {col_sidx} is second argument of {flat_idx} ) ) and
  inherits Sextable
  with {col_sidx} as {out} and {col} as {in} and
  {row_term} is mul instruction and
  ( ( {row_sidx} is first argument of {row_term} and
      {ld} is second argument of {row_term} ) or
    ( {ld} is first argument of {row_term} and
      {row_sidx} is second argument of {row_term} ) ) and
  inherits Sextable
  with {row_sidx} as {out} and {row} as {in} and
  {address} is gep instruction and
  {base_pointer} is first argument of {address} and
  {flat_idx} is second argument of {address} and
  {store} is store instruction and
  {address} is second argument of {store} and
  {base_pointer} strictly control flow dominates {begin} )
End
"""

MATRIX_STORE_2D_IDL = """
Constraint MatrixStore2D
( {outer_gep} is gep instruction and
  {base_pointer} is first argument of {outer_gep} and
  {zero1} is second argument of {outer_gep} and
  {zero1} is integer constant zero and
  {first_idx} is third argument of {outer_gep} and
  {address} is gep instruction and
  {outer_gep} is first argument of {address} and
  {zero2} is second argument of {address} and
  {zero2} is integer constant zero and
  {second_idx} is third argument of {address} and
  ( ( {first_idx} is the same as {col} and
      {second_idx} is the same as {row} ) or
    ( {first_idx} is the same as {row} and
      {second_idx} is the same as {col} ) ) and
  {store} is store instruction and
  {address} is second argument of {store} and
  {base_pointer} strictly control flow dominates {begin} )
End
"""

MATRIX_STORE_IDL = """
Constraint MatrixStore
( inherits MatrixStoreFlat or inherits MatrixStore2D )
End
"""

# ---------------------------------------------------------------------------
# Top-level idioms
# ---------------------------------------------------------------------------

REDUCTION_IDL = """
Constraint Reduction
( inherits For and
  collect i 12
  ( inherits VectorRead
    with {iterator} as {idx}
    and {read_value[i]} as {value}
    and {begin} as {begin} at {read[i]} ) and
  inherits InductionVar
  with {old_value} as {old_ind}
  and {kernel.output} as {new_ind} and
  {old_value} is not the same as {iterator} and
  inherits Concat
  with {read_value} as {in1}
  and {old_value} as {in2}
  and {kernel.input} as {out} and
  inherits KernelFunction
  with {begin} as {outer}
  and {body.begin} as {inner} at {kernel} )
End
"""

HISTOGRAM_IDL = """
Constraint Histogram
( inherits For and
  inherits ConditionalReadModifyWrite
  with {indexkernel.output} as {address}
  and {kernel.output} as {value} and
  collect i 12
  ( inherits VectorRead
    with {read_value[i]} as {value}
    and {iterator} as {idx}
    and {begin} as {begin} at {read[i]} ) and
  inherits Concat
  with {read_value} as {in1}
  and {old_value} as {in2}
  and {kernel.input} as {out} and
  inherits KernelFunction
  with {begin} as {outer}
  and {body.begin} as {inner} at {kernel} and
  inherits DataKernelFunction
  with {read_value} as {input}
  and {begin} as {outer}
  and {body.begin} as {inner} at {indexkernel} )
End
"""

SPMV_IDL = """
Constraint SPMV
( inherits For and
  inherits VectorStore
  with {iterator} as {idx}
  and {begin} as {begin} at {output} and
  inherits ReadRange
  with {iterator} as {idx}
  and {inner.iter_begin} as {range_begin}
  and {inner.iter_end} as {range_end}
  and {begin} as {begin} at {ranges} and
  inherits For at {inner} and
  {body.begin} control flow dominates {inner.begin} and
  inherits VectorRead
  with {inner.iterator} as {idx}
  and {begin} as {begin} at {idx_read} and
  inherits VectorRead
  with {idx_read.value} as {idx}
  and {begin} as {begin} at {indir_read} and
  inherits VectorRead
  with {inner.iterator} as {idx}
  and {begin} as {begin} at {seq_read} and
  {idx_read.base_pointer} is not the same as {seq_read.base_pointer} and
  inherits DotProductLoop
  with {inner} as {loop}
  and {indir_read.value} as {src1}
  and {seq_read.value} as {src2}
  and {output.address} as {update_address} and
  {store} is the same as {output.store} and
  {acc_init} is float constant zero )
End
"""

GEMM_IDL = """
Constraint GEMM
( inherits ForNest(N=3) and
  inherits MatrixStore
  with {iterator[0]} as {col}
  and {iterator[1]} as {row}
  and {begin} as {begin} at {output} and
  inherits MatrixRead
  with {iterator[0]} as {col}
  and {iterator[2]} as {row}
  and {begin} as {begin} at {input1} and
  inherits MatrixRead
  with {iterator[1]} as {col}
  and {iterator[2]} as {row}
  and {begin} as {begin} at {input2} and
  inherits DotProductLoop
  with {loop[2]} as {loop}
  and {input1.value} as {src1}
  and {input2.value} as {src2}
  and {output.address} as {update_address} at {dotp} and
  {dotp.store} is the same as {output.store} and
  {dotp.acc_init} is float constant zero )
End
"""

STENCIL1D_IDL = """
Constraint Stencil1D
( inherits For and
  inherits VectorStore
  with {iterator} as {idx}
  and {begin} as {begin} at {write} and
  collect i 12
  ( inherits StencilRead1D
    with {iterator} as {input}
    and {kernel.input[i]} as {value}
    and {begin} as {begin} at {reads[i]} ) and
  {write.base_pointer} is not the same as {reads[0].base_pointer} and
  {kernel.output} is first argument of {write.store} and
  inherits KernelFunction
  with {begin} as {outer}
  and {body.begin} as {inner} at {kernel} )
End
"""

# 2-D Jacobi-style stencil over nested arrays: writes out[i][j], reads
# in[i±a][j±b]; both loop iterators index in row-major order.
STENCIL_READ_2D_IDL = """
Constraint StencilRead2D
( {outer_gep} is gep instruction and
  {base_pointer} is first argument of {outer_gep} and
  {zero1} is second argument of {outer_gep} and
  {zero1} is integer constant zero and
  inherits OffsetIndex
  with {sidx1} as {out} and {input[0]} as {base_idx} at {off1} and
  {sidx1} is third argument of {outer_gep} and
  {address} is gep instruction and
  {outer_gep} is first argument of {address} and
  {zero2} is second argument of {address} and
  {zero2} is integer constant zero and
  inherits OffsetIndex
  with {sidx2} as {out} and {input[1]} as {base_idx} at {off2} and
  {sidx2} is third argument of {address} and
  {value} is load instruction and
  {address} is first argument of {value} and
  {base_pointer} strictly control flow dominates {begin} )
End
"""

MULTID_STORE_2D_IDL = """
Constraint MultidStore2D
( {outer_gep} is gep instruction and
  {base_pointer} is first argument of {outer_gep} and
  {zero1} is second argument of {outer_gep} and
  {zero1} is integer constant zero and
  {input[0]} is third argument of {outer_gep} and
  {address} is gep instruction and
  {outer_gep} is first argument of {address} and
  {zero2} is second argument of {address} and
  {zero2} is integer constant zero and
  {input[1]} is third argument of {address} and
  {store} is store instruction and
  {address} is second argument of {store} and
  {base_pointer} strictly control flow dominates {begin} )
End
"""

STENCIL2D_IDL = """
Constraint Stencil2D
( inherits ForNest(N=2) and
  inherits MultidStore2D
  with {iterator[0]} as {input[0]}
  and {iterator[1]} as {input[1]}
  and {begin} as {begin} at {write} and
  collect i 12
  ( inherits StencilRead2D
    with {iterator[0]} as {input[0]}
    and {iterator[1]} as {input[1]}
    and {kernel.input[i]} as {value}
    and {begin} as {begin} at {reads[i]} ) and
  {write.base_pointer} is not the same as {reads[0].base_pointer} and
  {kernel.output} is first argument of {write.store} and
  inherits KernelFunction
  with {begin} as {outer}
  and {loop[1].body.begin} as {inner} at {kernel} )
End
"""

STENCIL_READ_3D_IDL = """
Constraint StencilRead3D
( {gep1} is gep instruction and
  {base_pointer} is first argument of {gep1} and
  {zero1} is second argument of {gep1} and
  {zero1} is integer constant zero and
  inherits OffsetIndex
  with {sidx1} as {out} and {input[0]} as {base_idx} at {off1} and
  {sidx1} is third argument of {gep1} and
  {gep2} is gep instruction and
  {gep1} is first argument of {gep2} and
  {zero2} is second argument of {gep2} and
  {zero2} is integer constant zero and
  inherits OffsetIndex
  with {sidx2} as {out} and {input[1]} as {base_idx} at {off2} and
  {sidx2} is third argument of {gep2} and
  {address} is gep instruction and
  {gep2} is first argument of {address} and
  {zero3} is second argument of {address} and
  {zero3} is integer constant zero and
  inherits OffsetIndex
  with {sidx3} as {out} and {input[2]} as {base_idx} at {off3} and
  {sidx3} is third argument of {address} and
  {value} is load instruction and
  {address} is first argument of {value} and
  {base_pointer} strictly control flow dominates {begin} )
End
"""

MULTID_STORE_3D_IDL = """
Constraint MultidStore3D
( {gep1} is gep instruction and
  {base_pointer} is first argument of {gep1} and
  {zero1} is second argument of {gep1} and
  {zero1} is integer constant zero and
  {input[0]} is third argument of {gep1} and
  {gep2} is gep instruction and
  {gep1} is first argument of {gep2} and
  {zero2} is second argument of {gep2} and
  {zero2} is integer constant zero and
  {input[1]} is third argument of {gep2} and
  {address} is gep instruction and
  {gep2} is first argument of {address} and
  {zero3} is second argument of {address} and
  {zero3} is integer constant zero and
  {input[2]} is third argument of {address} and
  {store} is store instruction and
  {address} is second argument of {store} and
  {base_pointer} strictly control flow dominates {begin} )
End
"""

STENCIL3D_IDL = """
Constraint Stencil3D
( inherits ForNest(N=3) and
  inherits MultidStore3D
  with {iterator[0]} as {input[0]}
  and {iterator[1]} as {input[1]}
  and {iterator[2]} as {input[2]}
  and {begin} as {begin} at {write} and
  collect i 16
  ( inherits StencilRead3D
    with {iterator[0]} as {input[0]}
    and {iterator[1]} as {input[1]}
    and {iterator[2]} as {input[2]}
    and {kernel.input[i]} as {value}
    and {begin} as {begin} at {reads[i]} ) and
  {write.base_pointer} is not the same as {reads[0].base_pointer} and
  {kernel.output} is first argument of {write.store} and
  inherits KernelFunction
  with {begin} as {outer}
  and {loop[2].body.begin} as {inner} at {kernel} )
End
"""

FACTORIZATION_IDL = """
Constraint FactorizationOpportunity
( {sum} is add instruction and
  {left_addend} is first argument of {sum} and
  {left_addend} is mul instruction and
  {right_addend} is second argument of {sum} and
  {right_addend} is mul instruction and
  ( {factor} is first argument of {left_addend} or
    {factor} is second argument of {left_addend} ) and
  ( {factor} is first argument of {right_addend} or
    {factor} is second argument of {right_addend} ) )
End
"""

#: All library sources, in dependency order.
LIBRARY_SOURCES: list[str] = [
    SESE_IDL,
    FOR_IDL,
    FORNEST_IDL,
    SEXTABLE_IDL,
    VECTOR_READ_FLAT_IDL,
    VECTOR_READ_ARR2_IDL,
    VECTOR_READ_ARR3_IDL,
    VECTOR_READ_IDL,
    VECTOR_STORE_IDL,
    READ_RANGE_IDL,
    INDUCTION_VAR_IDL,
    CRMW_IDL,
    OFFSET_INDEX_IDL,
    NEIGHBOUR_INDEX_IDL,
    STENCIL_READ_1D_IDL,
    GEMM_LINEAR_IDL,
    DOT_PRODUCT_IDL,
    MATRIX_READ_FLAT_IDL,
    MATRIX_READ_2D_IDL,
    MATRIX_READ_IDL,
    MATRIX_STORE_FLAT_IDL,
    MATRIX_STORE_2D_IDL,
    MATRIX_STORE_IDL,
    REDUCTION_IDL,
    HISTOGRAM_IDL,
    SPMV_IDL,
    GEMM_IDL,
    STENCIL1D_IDL,
    STENCIL_READ_2D_IDL,
    MULTID_STORE_2D_IDL,
    STENCIL2D_IDL,
    STENCIL_READ_3D_IDL,
    MULTID_STORE_3D_IDL,
    STENCIL3D_IDL,
    FACTORIZATION_IDL,
]

#: The idioms the paper's Table 1 counts, grouped by reported category.
IDIOM_CATEGORIES: dict[str, list[str]] = {
    "scalar_reduction": ["Reduction"],
    "histogram_reduction": ["Histogram"],
    "stencil": ["Stencil1D", "Stencil2D", "Stencil3D"],
    "matrix_op": ["GEMM"],
    "sparse_matrix_op": ["SPMV"],
}

#: More specific idioms shadow less specific ones during counting.
SPECIFICITY_ORDER: list[str] = [
    "GEMM", "SPMV", "Stencil3D", "Stencil2D", "Stencil1D",
    "Histogram", "Reduction",
]


def library_line_count() -> int:
    """Lines of IDL in the library (the paper reports ≈500 for its set)."""
    return sum(len([l for l in src.splitlines() if l.strip()])
               for src in LIBRARY_SOURCES)


def load_library(compiler) -> None:
    """Register the whole library with an :class:`IdiomCompiler`."""
    for source in LIBRARY_SOURCES:
        compiler.load(source)
