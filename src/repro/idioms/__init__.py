"""The idiom library (IDL sources) and detection driver."""

from .detector import IdiomDetector, detect_idioms, TOP_LEVEL_IDIOMS
from .library import (
    IDIOM_CATEGORIES,
    LIBRARY_SOURCES,
    SPECIFICITY_ORDER,
    library_line_count,
    load_library,
)
from .matches import CATEGORY_OF, DetectionReport, IdiomMatch

__all__ = [
    "IdiomDetector", "detect_idioms", "TOP_LEVEL_IDIOMS",
    "IDIOM_CATEGORIES", "LIBRARY_SOURCES", "SPECIFICITY_ORDER",
    "library_line_count", "load_library",
    "CATEGORY_OF", "DetectionReport", "IdiomMatch",
]
