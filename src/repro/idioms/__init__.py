"""The idiom library (IDL sources), detection driver and scheduler."""

from .detector import (
    DETECTOR_LIMITS,
    IdiomDetector,
    TOP_LEVEL_IDIOMS,
    detect_idioms,
)
from .library import (
    IDIOM_CATEGORIES,
    LIBRARY_SOURCES,
    SPECIFICITY_ORDER,
    library_line_count,
    load_library,
)
from .matches import (
    CATEGORY_OF,
    DetectionReport,
    IdiomMatch,
    report_fingerprint,
)
from .scheduler import DetectionSession, InflightLedger

__all__ = [
    "DETECTOR_LIMITS", "IdiomDetector", "detect_idioms", "TOP_LEVEL_IDIOMS",
    "IDIOM_CATEGORIES", "LIBRARY_SOURCES", "SPECIFICITY_ORDER",
    "library_line_count", "load_library",
    "CATEGORY_OF", "DetectionReport", "IdiomMatch", "report_fingerprint",
    "DetectionSession", "InflightLedger",
]
