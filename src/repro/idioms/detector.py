"""The idiom detection driver (paper Figure 1's "Constraints Solver" stage).

Runs every top-level idiom over every function, deduplicates witness
variants, applies idiom-specific post-filters and resolves overlaps by
specificity (a GEMM loop nest is not additionally reported as the scalar
reduction its inner loop also matches — mirroring the paper's per-idiom
counting discipline).
"""

from __future__ import annotations

from ..analysis.info import FunctionAnalyses
from ..errors import IDLError
from ..ir.module import Function, Module
from ..idl.compiler import IdiomCompiler
from .library import SPECIFICITY_ORDER, load_library
from .matches import DetectionReport, IdiomMatch

#: Idioms detected by default, in specificity order.
TOP_LEVEL_IDIOMS: list[str] = list(SPECIFICITY_ORDER)


class IdiomDetector:
    """Detects the paper's five idiom classes across a module."""

    def __init__(self, compiler: IdiomCompiler | None = None,
                 idioms: list[str] | None = None,
                 max_solutions: int = 2_000):
        if compiler is None:
            compiler = IdiomCompiler()
            load_library(compiler)
        self.compiler = compiler
        self.idioms = idioms or list(TOP_LEVEL_IDIOMS)
        self.max_solutions = max_solutions

    # -- public API ---------------------------------------------------------------
    def detect(self, module: Module) -> DetectionReport:
        report = DetectionReport(module.name)
        for function in module.functions.values():
            report.matches.extend(self.detect_function(function))
        return report

    def detect_function(self, function: Function) -> list[IdiomMatch]:
        if function.is_declaration():
            return []
        analyses = FunctionAnalyses(function)
        matches: list[IdiomMatch] = []
        for idiom in self.idioms:
            found = self._detect_idiom(function, idiom, analyses)
            matches.extend(found)
        matches = _dedup_by_anchor(matches)
        matches = _resolve_overlaps(matches)
        return matches

    # -- internals --------------------------------------------------------------
    def _detect_idiom(self, function: Function, idiom: str,
                      analyses: FunctionAnalyses) -> list[IdiomMatch]:
        solutions = self.compiler.match(
            function, idiom, analyses=analyses,
            max_solutions=self.max_solutions)
        matches = [IdiomMatch(idiom, function, sol) for sol in solutions]
        return [m for m in matches if _post_filter(m)]


def _post_filter(match: IdiomMatch) -> bool:
    """Idiom-specific sanity requirements beyond the IDL constraints."""
    if match.idiom.startswith("Stencil"):
        offsets = match.stencil_offsets()
        if not offsets:
            return False  # a stencil must read something
        # Require a true neighbourhood: some read at a nonzero offset
        # (otherwise the loop is an elementwise map, which the paper does
        # not count as a stencil — Table 1 reports only 6 stencils).
        if not any(any(o != 0 for o in off) for off in offsets):
            return False
        # Out-of-place only: an input read from the written array means a
        # loop-carried recurrence (Gauss-Seidel), which is not the Jacobi
        # form the Halide/Lift translation supports.
        write_base = match.value("write.base_pointer")
        i = 0
        while f"reads[{i}].base_pointer" in match.solution:
            if match.solution[f"reads[{i}].base_pointer"] is write_base:
                return False
            i += 1
        return True
    if match.idiom == "Reduction":
        return match.value("old_value") is not None
    return True


def _dedup_by_anchor(matches: list[IdiomMatch]) -> list[IdiomMatch]:
    seen: set = set()
    result: list[IdiomMatch] = []
    for match in matches:
        key = match.anchor()
        if key in seen:
            continue
        seen.add(key)
        result.append(match)
    return result


def _resolve_overlaps(matches: list[IdiomMatch]) -> list[IdiomMatch]:
    """Drop matches subsumed by a more specific idiom on the same values.

    A Reduction is the inner accumulation of every SPMV/GEMM (its
    ``old_value`` is the dot-product accumulator phi), so those matches are
    counted once under the more specific idiom — mirroring the paper's
    per-idiom counting. Independent idioms sharing a loop (e.g. EP's
    histogram and conditional sum in one accept/reject loop) both count.
    """
    order = {name: i for i, name in enumerate(SPECIFICITY_ORDER)}
    matches = sorted(matches, key=lambda m: order.get(m.idiom, 99))
    claimed_accumulators: set[int] = set()
    claimed_stores: set[int] = set()
    kept: list[IdiomMatch] = []
    for match in matches:
        if match.idiom in ("SPMV", "GEMM"):
            acc = match.value("acc") or match.value("dotp.acc")
            if acc is not None:
                claimed_accumulators.add(id(acc))
            store = match.value("output.store") or match.value("store")
            if store is not None:
                claimed_stores.add(id(store))
            kept.append(match)
            continue
        if match.idiom.startswith("Stencil"):
            store = match.value("write.store")
            if store is not None:
                if id(store) in claimed_stores:
                    continue
                claimed_stores.add(id(store))
            kept.append(match)
            continue
        if match.idiom == "Histogram":
            store = match.value("store")
            if store is not None:
                if id(store) in claimed_stores:
                    continue
                claimed_stores.add(id(store))
            kept.append(match)
            continue
        if match.idiom == "Reduction":
            old = match.value("old_value")
            if old is not None and id(old) in claimed_accumulators:
                continue
            kept.append(match)
            continue
        kept.append(match)
    return kept


def detect_idioms(module: Module) -> DetectionReport:
    """One-shot convenience: build a detector and run it."""
    return IdiomDetector().detect(module)
