"""The idiom detection driver (paper Figure 1's "Constraints Solver" stage).

Runs every top-level idiom over every function, deduplicates witness
variants, applies idiom-specific post-filters and resolves overlaps by
specificity (a GEMM loop nest is not additionally reported as the scalar
reduction its inner loop also matches — mirroring the paper's per-idiom
counting discipline).
"""

from __future__ import annotations

from ..analysis.info import FunctionAnalyses
from ..errors import IDLError, SolveTimeout
from ..ir.module import Function, Module
from ..idl.compiler import IdiomCompiler
from ..idl.solver import SolveLimits, SolverStats
from .library import SPECIFICITY_ORDER, load_library
from .matches import DetectionReport, IdiomMatch

#: Idioms detected by default, in specificity order.
TOP_LEVEL_IDIOMS: list[str] = list(SPECIFICITY_ORDER)

#: The detection pipeline's solve budget. Tighter on solutions than the
#: raw solver default (witness variants explode on large functions; the
#: anchor dedup collapses them anyway) but the same step budget — one
#: config object threaded through detector → compiler → solver.
DETECTOR_LIMITS = SolveLimits(max_solutions=2_000)


class IdiomDetector:
    """Detects the paper's five idiom classes across a module.

    ``ordering``/``memo``/``indexed`` select the solve configuration.
    The default ``ordering="forest"`` matches the whole idiom library as
    one fused plan forest per function — compile-time feasibility
    signatures skip provably unmatchable idioms, shared constraint
    prefixes execute once, and one per-function subquery memo serves
    every idiom (see :mod:`repro.idl.forest`). ``ordering="plan"``
    retains the per-idiom static-plan executor and ``"dynamic"`` (with
    ``memo=False``/``indexed=False``) the seed's per-step behaviour, both
    for benchmarking; all three produce bit-identical match sets.

    ``cache`` (a directory path or an :class:`~repro.cache.ArtifactStore`)
    enables the content-addressed artifact cache: module-level detection
    (:meth:`detect`, via :class:`~repro.idioms.scheduler.DetectionSession`)
    then serves unchanged functions from disk and solves only the rest.
    Cached entries are keyed on :meth:`config_signature` plus each
    function's canonical IR text, so any change to the idiom library, the
    solve configuration or the IR re-solves exactly the affected
    functions. The per-function entry points (:meth:`detect_function*`)
    never consult the cache — they are the solving primitive the
    scheduler falls back to on a miss.
    """

    def __init__(self, compiler: IdiomCompiler | None = None,
                 idioms: list[str] | None = None,
                 limits: SolveLimits | None = None,
                 max_solutions: int | None = None,
                 ordering: str = "forest",
                 memo: bool = True,
                 indexed: bool = True,
                 cache=None):
        if ordering not in ("forest", "plan", "dynamic"):
            raise IDLError(f"unknown ordering {ordering!r}")
        #: Process-mode workers rebuild the detector from configuration
        #: alone, which only works for the standard library.
        self.standard_library = compiler is None
        if compiler is None:
            compiler = IdiomCompiler(
                memo_specs=None if memo else frozenset())
            load_library(compiler)
        self.compiler = compiler
        self.idioms = idioms or list(TOP_LEVEL_IDIOMS)
        self.limits = (limits or DETECTOR_LIMITS).with_overrides(
            max_solutions)
        self.ordering = ordering
        self.memo = memo
        self.indexed = indexed
        self._cache_store = self._bind_store(cache)
        self._cache = None

    def _bind_store(self, cache):
        if cache is None:
            return None
        import os

        from ..cache import ArtifactStore

        if isinstance(cache, (str, os.PathLike)):
            cache = ArtifactStore(os.fspath(cache))
        if not isinstance(cache, ArtifactStore):
            raise IDLError(
                f"cache must be a directory path or an ArtifactStore, "
                f"got {type(cache).__name__}")
        # The cache is bound to *this* detector's live configuration
        # (see the `cache` property); handing it a pre-built
        # DetectionCache could pair entries with the wrong signature, so
        # only the raw store is accepted.
        return cache

    @property
    def cache(self):
        """The store facade bound to the *current* config signature.

        Rebound lazily: loading more IDL into the compiler after
        construction changes the library signature, and a signature
        frozen at construction would keep serving entries keyed for the
        old library — stale match sets. Recomputing on access keeps the
        content-address contract airtight."""
        if self._cache_store is None:
            return None
        from ..cache import DetectionCache

        signature = self.config_signature()
        if self._cache is None or \
                self._cache.config_signature != signature:
            self._cache = DetectionCache(self._cache_store, signature)
        return self._cache

    def config_signature(self) -> str:
        """Digest of every non-IR input that can change this detector's
        match sets — the configuration half of the artifact cache's
        content addresses (the other half is per-function canonical IR)."""
        from ..cache.fingerprint import detection_config_signature
        from ..passes.pipeline import pipeline_signature

        return detection_config_signature(
            self.compiler.library_signature(), tuple(self.idioms),
            self.limits.max_solutions, self.limits.max_steps,
            self.ordering, self.memo, self.indexed, pipeline_signature())

    @property
    def max_solutions(self) -> int:
        return self.limits.max_solutions

    def warmup(self) -> "IdiomDetector":
        """Eagerly compile every idiom's lowered form and plan (and, in
        forest ordering, the fused plan forest) so the first request
        pays no compile cost — the resident-daemon startup step. The
        compiler caches make this idempotent; repeated detects through
        a warmed detector never rebuild the forest. Returns self."""
        self.compiler.prepare(self.idioms, memo=self.memo,
                              forest=self.ordering == "forest")
        return self

    # -- public API ---------------------------------------------------------------
    def detect(self, module: Module, workers: int = 1,
               mode: str = "thread",
               deadline_s: float | None = None,
               max_retries: int = 2) -> DetectionReport:
        """Detect across a module; ``workers > 1`` fans functions out over
        a :class:`~repro.idioms.scheduler.DetectionSession` worker pool
        (same report, deterministic merge order). ``deadline_s`` bounds
        each function's solve wall-clock (overruns degrade to partial
        results); ``max_retries`` bounds the session's retry ladder for
        transient worker failures."""
        from .scheduler import DetectionSession

        return DetectionSession(self, workers=workers, mode=mode,
                                deadline_s=deadline_s,
                                max_retries=max_retries).detect(module)

    def detect_function(self, function: Function,
                        analyses: FunctionAnalyses | None = None
                        ) -> list[IdiomMatch]:
        matches, _ = self.detect_function_with_stats(function, analyses)
        return matches

    def detect_function_with_stats(
            self, function: Function,
            analyses: FunctionAnalyses | None = None,
            deadline_s: float | None = None
    ) -> tuple[list[IdiomMatch], SolverStats]:
        """Matches plus aggregated search stats (which include solves that
        found nothing — matches alone would under-report the work).

        ``deadline_s`` (or ``limits.deadline_s``) arms a wall-clock bound
        on the solve; blowing it yields a *partial* result — whatever
        idioms completed before the cutoff, with ``stats.timed_out`` set
        so downstream layers (cache, session report) can tell a partial
        match list from a complete one."""
        stats = SolverStats()
        if function.is_declaration():
            return [], stats
        if analyses is None:
            analyses = FunctionAnalyses(function)
        limits = self.limits if deadline_s is None else \
            self.limits.with_overrides(deadline_s=deadline_s)
        matches: list[IdiomMatch] = []
        try:
            if self.ordering == "forest":
                # One fused pass: every idiom's matches from a single
                # forest walk. Match.stats is the pass-level accounting,
                # shared by every match of the function.
                solutions, solve_stats = self.compiler.match_library(
                    function, self.idioms, analyses=analyses,
                    limits=limits, memo=self.memo, indexed=self.indexed)
                stats.merge(solve_stats)
                for idiom in self.idioms:
                    matches.extend(
                        m for m in (IdiomMatch(idiom, function, sol,
                                               stats=solve_stats)
                                    for sol in solutions[idiom])
                        if _post_filter(m))
            else:
                for idiom in self.idioms:
                    found, solve_stats = self._detect_idiom(
                        function, idiom, analyses, limits)
                    stats.merge(solve_stats)
                    matches.extend(found)
        except SolveTimeout:
            stats.timed_out = True
        matches = _dedup_by_anchor(matches)
        matches = _resolve_overlaps(matches)
        return matches, stats

    # -- internals --------------------------------------------------------------
    def _detect_idiom(self, function: Function, idiom: str,
                      analyses: FunctionAnalyses,
                      limits: SolveLimits | None = None
                      ) -> tuple[list[IdiomMatch], SolverStats]:
        solutions, stats = self.compiler.match_with_stats(
            function, idiom, analyses=analyses,
            limits=limits or self.limits,
            ordering=self.ordering, memo=self.memo, indexed=self.indexed)
        matches = [IdiomMatch(idiom, function, sol, stats=stats)
                   for sol in solutions]
        return [m for m in matches if _post_filter(m)], stats


def _post_filter(match: IdiomMatch) -> bool:
    """Idiom-specific sanity requirements beyond the IDL constraints."""
    if match.idiom.startswith("Stencil"):
        offsets = match.stencil_offsets()
        if not offsets:
            return False  # a stencil must read something
        # Require a true neighbourhood: some read at a nonzero offset
        # (otherwise the loop is an elementwise map, which the paper does
        # not count as a stencil — Table 1 reports only 6 stencils).
        if not any(any(o != 0 for o in off) for off in offsets):
            return False
        # Out-of-place only: an input read from the written array means a
        # loop-carried recurrence (Gauss-Seidel), which is not the Jacobi
        # form the Halide/Lift translation supports.
        write_base = match.value("write.base_pointer")
        i = 0
        while f"reads[{i}].base_pointer" in match.solution:
            if match.solution[f"reads[{i}].base_pointer"] is write_base:
                return False
            i += 1
        return True
    if match.idiom == "Reduction":
        return match.value("old_value") is not None
    return True


def _dedup_by_anchor(matches: list[IdiomMatch]) -> list[IdiomMatch]:
    seen: set = set()
    result: list[IdiomMatch] = []
    for match in matches:
        key = match.anchor()
        if key in seen:
            continue
        seen.add(key)
        result.append(match)
    return result


def _resolve_overlaps(matches: list[IdiomMatch]) -> list[IdiomMatch]:
    """Drop matches subsumed by a more specific idiom on the same values.

    A Reduction is the inner accumulation of every SPMV/GEMM (its
    ``old_value`` is the dot-product accumulator phi), so those matches are
    counted once under the more specific idiom — mirroring the paper's
    per-idiom counting. Independent idioms sharing a loop (e.g. EP's
    histogram and conditional sum in one accept/reject loop) both count.
    """
    order = {name: i for i, name in enumerate(SPECIFICITY_ORDER)}
    matches = sorted(matches, key=lambda m: order.get(m.idiom, 99))
    claimed_accumulators: set[int] = set()
    claimed_stores: set[int] = set()
    kept: list[IdiomMatch] = []
    for match in matches:
        if match.idiom in ("SPMV", "GEMM"):
            acc = match.value("acc") or match.value("dotp.acc")
            if acc is not None:
                claimed_accumulators.add(id(acc))
            store = match.value("output.store") or match.value("store")
            if store is not None:
                claimed_stores.add(id(store))
            kept.append(match)
            continue
        if match.idiom.startswith("Stencil"):
            store = match.value("write.store")
            if store is not None:
                if id(store) in claimed_stores:
                    continue
                claimed_stores.add(id(store))
            kept.append(match)
            continue
        if match.idiom == "Histogram":
            store = match.value("store")
            if store is not None:
                if id(store) in claimed_stores:
                    continue
                claimed_stores.add(id(store))
            kept.append(match)
            continue
        if match.idiom == "Reduction":
            old = match.value("old_value")
            if old is not None and id(old) in claimed_accumulators:
                continue
            kept.append(match)
            continue
        kept.append(match)
    return kept


def detect_idioms(module: Module, workers: int = 1,
                  mode: str = "thread",
                  cache_dir: str | None = None) -> DetectionReport:
    """One-shot convenience: build a detector and run it."""
    return IdiomDetector(cache=cache_dir).detect(module, workers=workers,
                                                 mode=mode)
