"""Tokeniser for the Idiom Description Language (paper Figure 7).

IDL's surface syntax is word-based ("is add instruction and ...") with
variable references in braces (``{kernel.input[i]}``). The lexer returns
words, numbers, brace-delimited variable texts and punctuation; the parser
does all keyword recognition (IDL keywords are context dependent — ``for``
appears both in quantifiers and in ``forone``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import LexError, SourceLocation

_WORD_RE = re.compile(r"[A-Za-z_]\w*")
_NUM_RE = re.compile(r"\d+")


@dataclass(frozen=True)
class Token:
    kind: str  # 'word' | 'number' | 'var' | 'punct' | 'eof'
    text: str
    location: SourceLocation

    def __repr__(self) -> str:
        return f"IDLToken({self.kind}, {self.text!r})"


def tokenize(source: str, filename: str = "<idl>") -> list[Token]:
    tokens: list[Token] = []
    line = 1
    line_start = 0
    i, n = 0, len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        loc = SourceLocation(line, i - line_start + 1, filename)
        if ch == ";":  # comment to end of line
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch == "{":
            depth = 1
            j = i + 1
            while j < n and depth:
                if source[j] == "{":
                    depth += 1
                elif source[j] == "}":
                    depth -= 1
                j += 1
            if depth:
                raise LexError("unterminated variable reference", loc)
            tokens.append(Token("var", source[i + 1:j - 1].strip(), loc))
            line += source.count("\n", i, j)
            i = j
            continue
        wmatch = _WORD_RE.match(source, i)
        if wmatch:
            tokens.append(Token("word", wmatch.group(0), loc))
            i = wmatch.end()
            continue
        nmatch = _NUM_RE.match(source, i)
        if nmatch:
            tokens.append(Token("number", nmatch.group(0), loc))
            i = nmatch.end()
            continue
        if source.startswith("..", i):
            tokens.append(Token("punct", "..", loc))
            i += 2
            continue
        if ch in "()=,+-.":
            tokens.append(Token("punct", ch, loc))
            i += 1
            continue
        raise LexError(f"unexpected character {ch!r} in IDL source", loc)
    tokens.append(Token("eof", "", SourceLocation(line, 1, filename)))
    return tokens
