"""IDL — the Idiom Description Language (paper §3/§4).

A constraint language over LLVM-like SSA IR. Idioms are written as
composable constraint specifications; the compiler lowers them to flat
conjunction/disjunction trees of atomic predicates and a backtracking
solver enumerates every occurrence in user code.
"""

from .ast import Specification, VarRef
from .compiler import IdiomCompiler
from .forest import (
    FeasibilitySignature,
    PlanForest,
    build_forest,
    execute_forest,
    feasibility_signature,
)
from .lexer import tokenize
from .lowering import (
    LAnd,
    LAtom,
    LCollect,
    LMemo,
    LNative,
    LOr,
    Lowerer,
    NativeConstraint,
    Registry,
)
from .natives import (
    ConcatConstraint,
    KernelFunctionConstraint,
    standard_natives,
)
from .parser import parse_idl, parse_var_text
from .plan import (
    AndPlan,
    CollectPlan,
    OrPlan,
    Plan,
    compile_plan,
    node_cost,
    node_signature,
    plan_signature,
)
from .solver import DEFAULT_MAX_STEPS, SolveLimits, Solver, SolverStats
from .atoms import AtomEngine, SolveContext, atom_cost, value_key, \
    values_equal

__all__ = [
    "Specification", "VarRef",
    "IdiomCompiler",
    "FeasibilitySignature", "PlanForest", "build_forest", "execute_forest",
    "feasibility_signature",
    "tokenize",
    "LAnd", "LAtom", "LCollect", "LMemo", "LNative", "LOr",
    "Lowerer", "NativeConstraint", "Registry",
    "ConcatConstraint", "KernelFunctionConstraint", "standard_natives",
    "parse_idl", "parse_var_text",
    "AndPlan", "CollectPlan", "OrPlan", "Plan", "compile_plan", "node_cost",
    "node_signature", "plan_signature",
    "DEFAULT_MAX_STEPS", "SolveLimits", "Solver", "SolverStats",
    "AtomEngine", "SolveContext", "atom_cost", "value_key", "values_equal",
]
