"""Semantics of IDL atomic constraints over the IR.

Every atom supports ``check`` (all variables bound) and, where the relation
is efficiently enumerable, ``candidates`` (exactly one variable unbound) —
the generator functions the backtracking solver uses to drive the search.
``cost`` ranks how cheap an atom is to execute in the current environment;
the solver always runs the cheapest ready constraint next, implementing the
paper's "variables are collected and ordered to assist constraint solving".
"""

from __future__ import annotations

from typing import Iterable

from ..analysis.dataflow import (
    all_data_flow_passes_through,
    data_operands,
    data_users,
    flow_killed_by,
    has_dataflow_edge,
)
from ..analysis.info import FunctionAnalyses
from ..analysis.memdep import (
    accessed_pointer,
    base_pointer,
    has_dependence_edge,
    may_alias,
)
from ..errors import IDLError
from ..ir.instructions import BranchInst, Instruction, PhiInst
from ..ir.module import BasicBlock, Function
from ..ir.values import (
    Argument,
    Constant,
    ConstantFloat,
    ConstantInt,
    GlobalVariable,
    Value,
)
from .lowering import LAtom

#: Cost ranks (lower runs earlier).
COST_CHECK = 0
COST_UNIT = 1
COST_SMALL = 2
COST_OPCODE = 10
COST_CLASS = 20
COST_SCAN = 40
COST_NOT_READY = 1000


def values_equal(a: Value, b: Value) -> bool:
    """Identity, except structural equality for scalar constants."""
    if a is b:
        return True
    if isinstance(a, (ConstantInt, ConstantFloat)) and \
            isinstance(b, (ConstantInt, ConstantFloat)):
        return a == b
    return False


def value_key(value: Value):
    """A hashable identity for solution deduplication.

    Keys are interned on the value object: the solver's dedup paths
    (solution sets, memo tables, collect instances, the forest's subquery
    cache) recompute the key of the same value thousands of times per
    function, so the isinstance dispatch and tuple construction are paid
    once per object instead of once per comparison. Constants stay
    structurally keyed — two equal constants built independently intern
    equal (not identical) keys, which is all dedup needs.
    """
    try:
        return value._value_key
    except AttributeError:
        pass
    if isinstance(value, ConstantInt):
        key = ("ci", value.type, value.value)
    elif isinstance(value, ConstantFloat):
        key = ("cf", value.type, value.value)
    else:
        key = id(value)
    try:
        value._value_key = key
    except (AttributeError, TypeError):  # __slots__ values stay uncached
        pass
    return key


class SolveContext:
    """Per-function state shared by all atoms during one solve.

    The candidate indexes live on :class:`FunctionAnalyses`, so every idiom
    matched against one function shares them instead of rebuilding per
    solver instance.
    """

    def __init__(self, function: Function,
                 analyses: FunctionAnalyses | None = None):
        self.function = function
        self.analyses = analyses or FunctionAnalyses(function)
        self.by_opcode: dict[str, list[Instruction]] = self.analyses.by_opcode
        self.universe: list[Value] = self.analyses.universe
        self.globals: list[GlobalVariable] = [
            v for v in self.universe if isinstance(v, GlobalVariable)]

    # -- helpers -------------------------------------------------------------
    def dominates(self, a: Value, b: Value, strict: bool, post: bool) -> bool:
        a_inst = isinstance(a, Instruction)
        b_inst = isinstance(b, Instruction)
        if not post:
            if not a_inst:
                # Constants/arguments/globals are defined "before entry".
                if not b_inst:
                    return (not strict) and values_equal(a, b)
                return True
            if not b_inst:
                return False
            dom = self.analyses.dom
            return dom.strictly_dominates(a, b) if strict else \
                dom.dominates(a, b)
        if not a_inst or not b_inst:
            return (not strict) and values_equal(a, b)
        postdom = self.analyses.postdom
        return postdom.strictly_dominates(a, b) if strict else \
            postdom.dominates(a, b)


# ---------------------------------------------------------------------------
# Classification helpers
# ---------------------------------------------------------------------------

def _is_constant(value: Value) -> bool:
    return isinstance(value, Constant) and not isinstance(value, GlobalVariable)


def _is_compile_time(value: Value) -> bool:
    return isinstance(value, Constant)


def _class_check(cls: str, value: Value) -> bool:
    if cls == "unused":
        return not value.uses
    if cls == "constant":
        return _is_constant(value)
    if cls == "compile_time":
        return _is_compile_time(value)
    if cls == "argument":
        return isinstance(value, Argument)
    if cls == "instruction":
        return isinstance(value, Instruction)
    raise IDLError(f"unknown classification {cls!r}")


def _type_check(extra: dict, value: Value) -> bool:
    kind = extra["type"]
    if kind == "integer" and not value.type.is_integer():
        return False
    if kind == "float" and not value.type.is_float():
        return False
    if kind == "pointer" and not value.type.is_pointer():
        return False
    const = extra.get("const")
    if const is None:
        return True
    if kind == "integer":
        return isinstance(value, ConstantInt) and \
            value.value == (0 if const == "zero" else 1)
    if kind == "float":
        return isinstance(value, ConstantFloat) and \
            value.value == (0.0 if const == "zero" else 1.0)
    return False  # "pointer constant zero" would be null; unused


# ---------------------------------------------------------------------------
# Atom cost model
# ---------------------------------------------------------------------------

def atom_cost(atom: LAtom, env: dict) -> int:
    """Cost rank of executing ``atom`` in ``env``.

    Depends only on *which* variables are bound (name membership), never on
    their values — the property the static plan compiler relies on to
    precompute the solver's execution order per idiom (paper §4.4).
    """
    unbound = [v for v in atom.free_vars() if v not in env]
    if not unbound:
        return COST_CHECK
    if len(unbound) > 1:
        # 'reaches phi node' with the phi bound binds value and branch
        # together; everything else must wait for more bindings.
        if atom.kind == "reaches_phi" and atom.vars[1] in env:
            return COST_SMALL
        return COST_NOT_READY
    return _generator_cost(atom, unbound[0], env)


def _generator_cost(atom: LAtom, var: str, env: dict) -> int:
    position = atom.vars.index(var) if var in atom.vars else -1
    kind = atom.kind
    if kind == "same" and not atom.extra["negated"]:
        return COST_UNIT
    if kind == "argument_of":
        return COST_UNIT if position == 0 and atom.vars[1] in env \
            else COST_SMALL
    if kind == "reaches_phi":
        if atom.vars[1] in env:
            return COST_SMALL
        return COST_SCAN
    if kind == "edge":
        return COST_SMALL if atom.extra["edge"] in ("data", "control") \
            else COST_SCAN
    if kind == "opcode":
        return COST_OPCODE
    if kind == "class":
        cls = atom.extra["cls"]
        if cls == "argument":
            return COST_UNIT
        if cls == "instruction":
            return COST_CLASS
        if cls == "constant":
            return COST_NOT_READY  # constants are not enumerable
        return COST_SCAN
    if kind in ("passes_through", "killed"):
        return COST_NOT_READY
    if kind == "same":  # negated: check-only, never generates
        return COST_NOT_READY
    if kind == "dominates" and atom.extra.get("negated"):
        return COST_NOT_READY  # negative constraints never generate
    return COST_SCAN


def atom_bindings(atom: LAtom, bound) -> frozenset:
    """Variables executing ``atom`` would newly bind, given bound names."""
    unbound = [v for v in atom.free_vars() if v not in bound]
    if len(unbound) == 1:
        return frozenset(unbound)
    if atom.kind == "reaches_phi" and atom.vars[1] in bound:
        return frozenset(v for v in (atom.vars[0], atom.vars[2])
                         if v not in bound)
    return frozenset()


# ---------------------------------------------------------------------------
# Atom engine
# ---------------------------------------------------------------------------

class AtomEngine:
    """Checks and candidate generation for lowered atoms.

    ``stats`` (when given) receives a tick per universe element a fallback
    scan filters, so the solver's step counts reflect generation work.
    ``indexed=False`` restores the seed generators (full-universe scans) for
    apples-to-apples benchmarking against the plan-driven configuration.
    """

    def __init__(self, context: SolveContext, stats=None,
                 indexed: bool = True):
        self.ctx = context
        self.stats = stats
        self.indexed = indexed

    # -- public API -------------------------------------------------------------
    def cost(self, atom: LAtom, env: dict) -> int:
        return atom_cost(atom, env)

    def check(self, atom: LAtom, env: dict) -> bool:
        values = [env[v] for v in atom.vars]
        kind = atom.kind
        if kind == "type":
            return _type_check(atom.extra, values[0])
        if kind == "class":
            return _class_check(atom.extra["cls"], values[0])
        if kind == "opcode":
            return isinstance(values[0], Instruction) and \
                values[0].opcode == atom.extra["opcode"]
        if kind == "same":
            equal = values_equal(values[0], values[1])
            return (not equal) if atom.extra["negated"] else equal
        if kind == "argument_of":
            return self._check_argument_of(atom, values[0], values[1])
        if kind == "edge":
            return self._check_edge(atom.extra["edge"], values[0], values[1])
        if kind == "reaches_phi":
            return self._check_reaches_phi(values[0], values[1], values[2])
        if kind == "dominates":
            return self._check_dominates(atom, values[0], values[1])
        if kind == "passes_through":
            return self._check_passes_through(atom, values)
        if kind == "killed":
            lists = [[env[v] for v in vl] for vl in atom.varlists]
            return flow_killed_by(lists[0], lists[1], lists[2],
                                  self.ctx.analyses.cfg)
        raise IDLError(f"unknown atom kind {atom.kind!r}")

    def candidates(self, atom: LAtom, var: str, env: dict) -> Iterable[Value]:
        """Yield candidate values for the single unbound variable ``var``."""
        position = atom.vars.index(var) if var in atom.vars else -1
        kind = atom.kind
        if kind == "opcode" and position == 0:
            yield from self.ctx.by_opcode.get(atom.extra["opcode"], ())
            return
        if kind == "class" and position == 0:
            cls = atom.extra["cls"]
            if cls == "instruction":
                for insts in [self.ctx.by_opcode.get(op, ())
                              for op in sorted(self.ctx.by_opcode)]:
                    yield from insts
                return
            if cls == "argument":
                yield from self.ctx.function.args
                return
            if cls == "compile_time":
                yield from self.ctx.globals
                if not self.indexed:
                    # The seed also scanned the universe here, re-yielding
                    # the globals; only they are compile-time constants.
                    yield from self._scan(atom, var, env)
                return
        if kind == "same" and not atom.extra["negated"]:
            other = atom.vars[1 - position]
            yield env[other]
            return
        if kind == "argument_of":
            yield from self._gen_argument_of(atom, position, env)
            return
        if kind == "edge":
            yield from self._gen_edge(atom, position, env)
            return
        if kind == "reaches_phi":
            yield from self._gen_reaches_phi(atom, position, env)
            return
        if self.indexed and kind == "type":
            yield from self.ctx.analyses.by_type_kind.get(
                atom.extra["type"], ())
            return
        yield from self._scan(atom, var, env)

    # -- checks -----------------------------------------------------------------
    def _check_argument_of(self, atom: LAtom, child: Value,
                           parent: Value) -> bool:
        position = atom.extra["position"]
        if not isinstance(parent, Instruction):
            return False
        if position >= len(parent.operands):
            return False
        return values_equal(parent.operands[position], child)

    def _check_edge(self, edge: str, a: Value, b: Value) -> bool:
        if edge == "data":
            return has_dataflow_edge(a, b)
        if edge == "control":
            if not isinstance(a, Instruction) or not isinstance(b, Instruction):
                return False
            return self.ctx.analyses.cfg.has_edge(a, b)
        if edge == "control_dominance":
            if not isinstance(a, Instruction) or not isinstance(b, Instruction):
                return False
            return self.ctx.analyses.control_dep.depends_on(b, a)
        if edge == "dependence":
            if not isinstance(a, Instruction) or not isinstance(b, Instruction):
                return False
            return has_dependence_edge(a, b)
        raise IDLError(f"unknown edge kind {edge!r}")

    def _check_reaches_phi(self, value: Value, phi: Value,
                           branch: Value) -> bool:
        if not isinstance(phi, PhiInst) or not isinstance(branch, BranchInst):
            return False
        for incoming, block in phi.incoming:
            if block.terminator is branch and values_equal(incoming, value):
                return True
        return False

    def _check_dominates(self, atom: LAtom, a: Value, b: Value) -> bool:
        if atom.extra["flow"] == "data":
            raise IDLError("data flow dominance is not implemented")
        result = self.ctx.dominates(a, b, atom.extra["strict"],
                                    atom.extra["post"])
        return (not result) if atom.extra["negated"] else result

    def _check_passes_through(self, atom: LAtom, values: list[Value]) -> bool:
        source, target, via = values
        flow = atom.extra.get("flow")
        if flow == "data":
            return all_data_flow_passes_through(source, target, via)
        if flow == "control":
            if not all(isinstance(v, Instruction) for v in values):
                return False
            return self.ctx.analyses.cfg.all_paths_pass_through(
                source, target, via)
        # Combined data+control flow: both projections must hold.
        ok_data = all_data_flow_passes_through(source, target, via)
        if not all(isinstance(v, Instruction) for v in values):
            return ok_data
        return ok_data and self.ctx.analyses.cfg.all_paths_pass_through(
            source, target, via)

    # -- generators -------------------------------------------------------------
    def _gen_argument_of(self, atom: LAtom, position: int,
                         env: dict) -> Iterable[Value]:
        arg_pos = atom.extra["position"]
        if position == 0:  # child unbound
            parent = env[atom.vars[1]]
            if isinstance(parent, Instruction) and \
                    arg_pos < len(parent.operands):
                yield parent.operands[arg_pos]
            return
        # Parent unbound: walk the child's use list.
        child = env[atom.vars[0]]
        for use in child.uses:
            if use.index == arg_pos and isinstance(use.user, Instruction):
                yield use.user

    def _gen_edge(self, atom: LAtom, position: int,
                  env: dict) -> Iterable[Value]:
        edge = atom.extra["edge"]
        if edge == "data":
            if position == 1:
                yield from data_users(env[atom.vars[0]])
            else:
                yield from data_operands(env[atom.vars[1]])
            return
        if edge == "control":
            cfg = self.ctx.analyses.cfg
            if position == 1:
                src = env[atom.vars[0]]
                if isinstance(src, Instruction):
                    yield from cfg.successors(src)
            else:
                dst = env[atom.vars[1]]
                if isinstance(dst, Instruction):
                    yield from cfg.predecessors(dst)
            return
        if edge == "control_dominance" and position == 0:
            dst = env[atom.vars[1]]
            if isinstance(dst, Instruction):
                yield from self.ctx.analyses.control_dep.controllers(dst)
            return
        if self.indexed and edge == "dependence":
            yield from self._gen_dependence(atom, position, env)
            return
        yield from self._scan(atom, atom.vars[position], env)

    def _gen_dependence(self, atom: LAtom, position: int,
                        env: dict) -> Iterable[Value]:
        """Dependence-edge candidates: memory ops on a may-aliasing base.

        Uses the per-function loads/stores-by-base-pointer indexes; buckets
        whose base provably cannot alias the bound endpoint's base are
        skipped (distinct allocas/globals — see ``memdep.may_alias``), the
        ambiguous bucket (key 0) is always included.
        """
        other = env[atom.vars[1 - position]]
        pointer = accessed_pointer(other) if isinstance(other, Instruction) \
            else None
        anchor = base_pointer(pointer) if pointer is not None else None
        analyses = self.ctx.analyses
        for index in (analyses.loads_by_base, analyses.stores_by_base):
            for key, insts in index.items():
                if anchor is not None and key != 0 and \
                        not may_alias(insts[0].pointer, pointer):
                    continue
                yield from insts
        yield from self.ctx.by_opcode.get("call", ())

    def _gen_reaches_phi(self, atom: LAtom, position: int,
                         env: dict) -> Iterable[Value]:
        phi_var = atom.vars[1]
        if phi_var in env:
            phi = env[phi_var]
            if not isinstance(phi, PhiInst):
                return
            for value, block in phi.incoming:
                branch = block.terminator
                if branch is None:
                    continue
                if position == 0:
                    if atom.vars[2] not in env or \
                            env[atom.vars[2]] is branch:
                        yield value
                elif position == 2:
                    if atom.vars[0] not in env or \
                            values_equal(env[atom.vars[0]], value):
                        yield branch
            return
        if self.indexed and position == 1:
            # Unbound phi: enumerate the per-block phi index instead of
            # scanning the universe; the caller's check filters the rest.
            for phis in self.ctx.analyses.phis_by_block.values():
                yield from phis
            return
        yield from self._scan(atom, atom.vars[position], env)

    def _scan(self, atom: LAtom, var: str, env: dict) -> Iterable[Value]:
        """Last-resort generator: filter the whole function universe."""
        stats = self.stats
        for value in self.ctx.universe:
            if stats is not None:
                stats.tick()
            trial = dict(env)
            trial[var] = value
            try:
                if self.check(atom, trial):
                    yield value
            except IDLError:
                raise
