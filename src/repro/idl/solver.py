"""Backtracking constraint solver over LLVM-like IR.

Architecture follows the paper (§2.1, §4.4) and its CGO'17 predecessor:
the lowered constraint tree (conjunctions, disjunctions, atoms, collects,
natives) is searched by standard backtracking; at every step the solver
executes the *cheapest ready* conjunct — pure checks first, then
single-candidate generators, then indexed generators, then scans — which
is the dynamic equivalent of the paper's static variable ordering. All
solutions are enumerated and deduplicated.
"""

from __future__ import annotations

from typing import Iterator

from ..analysis.info import FunctionAnalyses
from ..errors import IDLError
from ..ir.module import Function
from .atoms import COST_NOT_READY, AtomEngine, SolveContext, value_key
from .lowering import LAnd, LAtom, LCollect, LNative, LOr

#: Cost rank for a ready collect (late: after its outer variables bind).
COST_COLLECT = 80

#: Disjunctions defer past plain generators: entering an Or-branch commits
#: to solving it as a unit, so it should start only after the surrounding
#: conjunction has bound the context variables the branch checks against.
COST_OR_DEFER = 25


class SearchBudget:
    """Guards against pathological search explosion."""

    def __init__(self, max_steps: int = 5_000_000):
        self.max_steps = max_steps
        self.steps = 0

    def tick(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise IDLError(
                f"constraint search exceeded {self.max_steps} steps")


def _is_negative_atom(node) -> bool:
    return isinstance(node, LAtom) and node.extra.get("negated", False)


class Solver:
    """Enumerates all solutions of a lowered constraint over one function."""

    def __init__(self, function: Function,
                 analyses: FunctionAnalyses | None = None,
                 max_solutions: int = 10_000,
                 max_steps: int = 5_000_000):
        self.context = SolveContext(function, analyses)
        self.engine = AtomEngine(self.context)
        self.max_solutions = max_solutions
        self.budget = SearchBudget(max_steps)
        #: Search paths abandoned because no generator was available.
        self.stuck_branches = 0

    # -- public API ---------------------------------------------------------------
    def solutions(self, lowered) -> list[dict]:
        """All distinct solutions, as dicts of variable name → IR value."""
        results: list[dict] = []
        seen: set = set()
        names = sorted(lowered.free_vars())
        for env in self._solve(lowered, {}):
            clean = {k: v for k, v in env.items() if not k.startswith("#")}
            key = tuple((k, value_key(v)) for k, v in sorted(clean.items()))
            if key in seen:
                continue
            seen.add(key)
            results.append(clean)
            if len(results) >= self.max_solutions:
                break
        return results

    def first(self, lowered) -> dict | None:
        for env in self._solve(lowered, {}):
            return {k: v for k, v in env.items() if not k.startswith("#")}
        return None

    # -- node dispatch ---------------------------------------------------------------
    def _solve(self, node, env: dict) -> Iterator[dict]:
        if isinstance(node, LAtom):
            yield from self._solve_atom(node, env)
        elif isinstance(node, LAnd):
            yield from self._solve_and(list(node.children), env)
        elif isinstance(node, LOr):
            for child in node.children:
                yield from self._solve(child, env)
        elif isinstance(node, LNative):
            yield from node.impl.solve(env, node.args, self.context)
        elif isinstance(node, LCollect):
            yield from self._solve_collect(node, env)
        else:
            raise IDLError(f"unknown lowered node {type(node).__name__}")

    def _solve_atom(self, atom: LAtom, env: dict) -> Iterator[dict]:
        self.budget.tick()
        unbound = [v for v in atom.free_vars() if v not in env]
        if not unbound:
            if self.engine.check(atom, env):
                yield env
            return
        if len(unbound) == 1:
            var = unbound[0]
            for candidate in self.engine.candidates(atom, var, env):
                self.budget.tick()
                trial = dict(env)
                trial[var] = candidate
                if self.engine.check(atom, trial):
                    yield trial
            return
        # Multi-binding: 'reaches phi node' with the phi bound can bind both
        # the incoming value and the branch in one step.
        if atom.kind == "reaches_phi" and atom.vars[1] in env:
            phi = env[atom.vars[1]]
            from ..ir.instructions import PhiInst

            if not isinstance(phi, PhiInst):
                return
            for value, block in phi.incoming:
                branch = block.terminator
                if branch is None:
                    continue
                self.budget.tick()
                trial = dict(env)
                trial[atom.vars[0]] = value
                trial[atom.vars[2]] = branch
                if self.engine.check(atom, trial):
                    yield trial
            return
        raise IDLError(
            f"atom {atom.kind} reached with {len(unbound)} unbound "
            f"variables: {unbound}")

    def _solve_and(self, children: list, env: dict) -> Iterator[dict]:
        if not children:
            yield env
            return
        best_index, best_cost = -1, COST_NOT_READY + 1
        for i, child in enumerate(children):
            cost = self._cost(child, env)
            if cost < best_cost:
                best_index, best_cost = i, cost
                if cost == 0:
                    break
        if best_cost >= COST_NOT_READY:
            # No remaining conjunct can run: variables it needs can no
            # longer be bound on this search path (e.g. a negative atom
            # over reads[0] of an empty collect, or an Or-branch entered
            # without its outer context). The branch fails; a counter is
            # kept so tests can flag library-level ordering bugs.
            self.stuck_branches += 1
            return
        chosen = children[best_index]
        rest = children[:best_index] + children[best_index + 1:]
        for extended in self._solve(chosen, env):
            yield from self._solve_and(rest, extended)

    def _cost(self, node, env: dict) -> int:
        if isinstance(node, LAtom):
            return self.engine.cost(node, env)
        if isinstance(node, LAnd):
            if not node.children:
                return 0
            return min(self._cost(c, env) for c in node.children)
        if isinstance(node, LOr):
            if not node.children:
                return 0
            worst = max(self._cost(c, env) for c in node.children)
            if worst >= COST_NOT_READY:
                return COST_NOT_READY
            return min(worst + COST_OR_DEFER, COST_NOT_READY - 1)
        if isinstance(node, LNative):
            return node.impl.cost(env, node.args, self.context)
        if isinstance(node, LCollect):
            ready = all(v in env for v in node.free_vars())
            return COST_COLLECT if ready else COST_NOT_READY
        raise IDLError(f"unknown lowered node {type(node).__name__}")

    def _solve_collect(self, node: LCollect, env: dict) -> Iterator[dict]:
        """Enumerate all body solutions; bind indexed families.

        Per the paper: collect "capture[s] all possible solutions of a given
        constraint" — a logical ∀, so it never backtracks into alternative
        subsets: there is exactly one extension (possibly with zero
        instances found).
        """
        indexed = sorted(node.indexed_vars())
        solutions: list[dict] = []
        seen: set = set()
        for sol in self._solve(node.instance, env):
            key = tuple(value_key(sol[name]) for name in indexed
                        if name in sol)
            if key in seen:
                continue
            seen.add(key)
            solutions.append(sol)
            if len(solutions) >= node.limit:
                break
        new_env = dict(env)
        bases: set[str] = set()
        for j, sol in enumerate(solutions):
            mapping = node.index_names[j]
            for name0 in indexed:
                if name0 not in sol:
                    continue
                target = mapping.get(name0, name0)
                if target in new_env and \
                        value_key(new_env[target]) != value_key(sol[name0]):
                    return  # inconsistent with an earlier binding
                new_env[target] = sol[name0]
        for name0 in indexed:
            base = name0[:name0.find("[")] if "[" in name0 else name0
            bases.add(base)
        for base in bases:
            new_env[f"#len:{base}"] = len(solutions)
        yield new_env
