"""Backtracking constraint solver over LLVM-like IR.

Architecture follows the paper (§2.1, §4.4) and its CGO'17 predecessor:
the lowered constraint tree (conjunctions, disjunctions, atoms, collects,
natives, memo references) is searched by standard backtracking. Execution
order comes from a static per-idiom plan (:mod:`.plan`) compiled once by
the :class:`~repro.idl.compiler.IdiomCompiler`: checks first, then
single-candidate generators, indexed generators, scans — the paper's
static variable ordering. When a planned step is not ready (an ``or``
branch bound fewer names than the plan assumed), the executor falls back
to the seed's dynamic cheapest-ready selection for the remainder of that
conjunction, so the enumerated solution set is identical either way. All
solutions are enumerated and deduplicated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Iterator

from ..analysis.info import FunctionAnalyses
from ..errors import IDLError, SolveTimeout
from ..ir.module import Function
from .atoms import COST_NOT_READY, AtomEngine, SolveContext, value_key, \
    values_equal
from .lowering import LAnd, LAtom, LCollect, LMemo, LNative, LOr
from .plan import AndPlan, CollectPlan, OrPlan, Plan, node_cost

# Re-exported for backward compatibility (they used to live here).
from .plan import COST_COLLECT, COST_OR_DEFER  # noqa: F401

#: Default search-step cap shared by :class:`SolveLimits` (the configured
#: budget) and :class:`SolverStats` (the enforcing counter). Ticks count
#: every atom execution, candidate, and scan-filtered universe element
#: (the seed budget ignored scan filtering), so the cap is 4x the seed's
#: 5M to keep the same effective headroom for scan-heavy searches.
DEFAULT_MAX_STEPS = 20_000_000


@dataclass(frozen=True)
class SolveLimits:
    """The one budget configuration threaded through compiler, solver and
    detector: solution cap and search-step cap for a single solve."""

    max_solutions: int = 10_000
    max_steps: int = DEFAULT_MAX_STEPS
    #: Wall-clock allowance for one solve, or None for unbounded. Unlike
    #: ``max_steps`` (which raises :class:`~repro.errors.IDLError`, a
    #: hard configuration error), blowing the deadline raises
    #: :class:`~repro.errors.SolveTimeout`, which the detection layer
    #: converts into a partial result.
    deadline_s: float | None = None

    def with_overrides(self, max_solutions: int | None = None,
                       max_steps: int | None = None,
                       deadline_s: float | None = None) -> "SolveLimits":
        out = self
        if max_solutions is not None:
            out = replace(out, max_solutions=max_solutions)
        if max_steps is not None:
            out = replace(out, max_steps=max_steps)
        if deadline_s is not None:
            out = replace(out, deadline_s=deadline_s)
        return out


@dataclass
class SolverStats:
    """Search-effort accounting for one or more solves.

    ``ticks`` counts solver steps: every atom execution, every candidate a
    generator yields, and every universe element a fallback scan filters.
    ``backtracks`` counts rejected candidates, ``plan_fallbacks`` how often
    a planned step was not ready and the dynamic ordering took over,
    ``stuck_branches`` abandoned search paths, and ``memo_hits``/``misses``
    the per-function memo cache behaviour for shared sub-constraints.
    ``feasibility_skips`` counts (function, idiom) solves the forest's
    compile-time signatures proved empty without touching the solver, and
    ``subquery_hits`` replays of the forest's shared per-function collect
    cache (both zero outside ``ordering="forest"``).
    """

    ticks: int = 0
    backtracks: int = 0
    plan_fallbacks: int = 0
    stuck_branches: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    feasibility_skips: int = 0
    subquery_hits: int = 0
    max_steps: int = DEFAULT_MAX_STEPS
    #: Deadline arming (excluded from :meth:`as_dict`, so cached stats
    #: payloads keep their pre-deadline shape). ``deadline_at`` is an
    #: absolute ``time.monotonic()`` instant; ``timed_out`` records that
    #: this solve (or one merged into it) was cut short, which the cache
    #: layer uses to refuse to persist partial results.
    deadline_at: float | None = None
    timed_out: bool = False

    def arm_deadline(self, deadline_s: float | None) -> None:
        """Start the wall clock; a None allowance leaves it unarmed."""
        if deadline_s is not None:
            self.deadline_at = time.monotonic() + deadline_s

    def tick(self) -> None:
        self.ticks += 1
        if self.ticks > self.max_steps:
            raise IDLError(
                f"constraint search exceeded {self.max_steps} steps")
        # The clock is sampled every 4096 ticks: a syscall per tick would
        # dominate the solver's inner loop, and at >1M ticks/s the check
        # granularity stays well under any sensible deadline.
        if self.deadline_at is not None and self.ticks & 4095 == 0 \
                and time.monotonic() > self.deadline_at:
            self.timed_out = True
            raise SolveTimeout(
                f"constraint search exceeded its wall-clock deadline "
                f"after {self.ticks} steps")

    def merge(self, other: "SolverStats") -> "SolverStats":
        self.timed_out = self.timed_out or other.timed_out
        self.ticks += other.ticks
        self.backtracks += other.backtracks
        self.plan_fallbacks += other.plan_fallbacks
        self.stuck_branches += other.stuck_branches
        self.memo_hits += other.memo_hits
        self.memo_misses += other.memo_misses
        self.feasibility_skips += other.feasibility_skips
        self.subquery_hits += other.subquery_hits
        return self

    def as_dict(self) -> dict[str, int]:
        return {
            "ticks": self.ticks,
            "backtracks": self.backtracks,
            "plan_fallbacks": self.plan_fallbacks,
            "stuck_branches": self.stuck_branches,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "feasibility_skips": self.feasibility_skips,
            "subquery_hits": self.subquery_hits,
        }


def _is_negative_atom(node) -> bool:
    return isinstance(node, LAtom) and node.extra.get("negated", False)


class Solver:
    """Enumerates all solutions of a lowered constraint over one function."""

    def __init__(self, function: Function,
                 analyses: FunctionAnalyses | None = None,
                 limits: SolveLimits | None = None,
                 *,
                 max_solutions: int | None = None,
                 max_steps: int | None = None,
                 indexed: bool = True):
        limits = (limits or SolveLimits()).with_overrides(
            max_solutions, max_steps)
        self.limits = limits
        self.stats = SolverStats(max_steps=limits.max_steps)
        self.stats.arm_deadline(limits.deadline_s)
        self.context = SolveContext(function, analyses)
        self.engine = AtomEngine(self.context, stats=self.stats,
                                 indexed=indexed)

    @property
    def max_solutions(self) -> int:
        return self.limits.max_solutions

    @property
    def stuck_branches(self) -> int:
        return self.stats.stuck_branches

    # -- public API ---------------------------------------------------------------
    def solutions(self, lowered, plan: Plan | None = None) -> list[dict]:
        """All distinct solutions, as dicts of variable name → IR value."""
        results: list[dict] = []
        seen: set = set()
        for env in self._enumerate(lowered, plan):
            clean = {k: v for k, v in env.items() if not k.startswith("#")}
            key = tuple((k, value_key(v)) for k, v in sorted(clean.items()))
            if key in seen:
                continue
            seen.add(key)
            results.append(clean)
            if len(results) >= self.limits.max_solutions:
                break
        return results

    def first(self, lowered, plan: Plan | None = None) -> dict | None:
        for env in self._enumerate(lowered, plan):
            return {k: v for k, v in env.items() if not k.startswith("#")}
        return None

    def _enumerate(self, lowered, plan: Plan | None) -> Iterator[dict]:
        if plan is not None:
            return self._solve_plan(plan, {})
        return self._solve(lowered, {})

    # -- plan execution ---------------------------------------------------------------
    def _solve_plan(self, plan: Plan, env: dict) -> Iterator[dict]:
        if isinstance(plan, AndPlan):
            yield from self._solve_and_plan(plan.steps, 0, env)
        elif isinstance(plan, OrPlan):
            for branch in plan.branches:
                yield from self._solve_plan(branch, env)
        elif isinstance(plan, CollectPlan):
            yield from self._solve_collect(plan.node, env, plan.body)
        else:
            yield from self._solve(plan.node, env)

    def _solve_and_plan(self, steps: list[Plan], index: int,
                        env: dict) -> Iterator[dict]:
        if index == len(steps):
            yield env
            return
        step = steps[index]
        if node_cost(step.node, env, self.context) >= COST_NOT_READY:
            # The plan assumed a binding (or-branch intersection, collect
            # instance) that this search path did not produce: re-derive
            # the order dynamically for the remaining conjuncts.
            self.stats.plan_fallbacks += 1
            yield from self._solve_and([s.node for s in steps[index:]], env)
            return
        for extended in self._solve_plan(step, env):
            yield from self._solve_and_plan(steps, index + 1, extended)

    # -- node dispatch ---------------------------------------------------------------
    def _solve(self, node, env: dict) -> Iterator[dict]:
        if isinstance(node, LAtom):
            yield from self._solve_atom(node, env)
        elif isinstance(node, LAnd):
            yield from self._solve_and(list(node.children), env)
        elif isinstance(node, LOr):
            for child in node.children:
                yield from self._solve(child, env)
        elif isinstance(node, LNative):
            yield from node.impl.solve(env, node.args, self.context)
        elif isinstance(node, LCollect):
            yield from self._solve_collect(node, env)
        elif isinstance(node, LMemo):
            yield from self._solve_memo(node, env)
        else:
            raise IDLError(f"unknown lowered node {type(node).__name__}")

    def _solve_atom(self, atom: LAtom, env: dict) -> Iterator[dict]:
        self.stats.tick()
        unbound = [v for v in atom.free_vars() if v not in env]
        if not unbound:
            if self.engine.check(atom, env):
                yield env
            else:
                self.stats.backtracks += 1
            return
        if len(unbound) == 1:
            var = unbound[0]
            for candidate in self.engine.candidates(atom, var, env):
                self.stats.tick()
                trial = dict(env)
                trial[var] = candidate
                if self.engine.check(atom, trial):
                    yield trial
                else:
                    self.stats.backtracks += 1
            return
        # Multi-binding: 'reaches phi node' with the phi bound can bind both
        # the incoming value and the branch in one step.
        if atom.kind == "reaches_phi" and atom.vars[1] in env:
            phi = env[atom.vars[1]]
            from ..ir.instructions import PhiInst

            if not isinstance(phi, PhiInst):
                return
            for value, block in phi.incoming:
                branch = block.terminator
                if branch is None:
                    continue
                self.stats.tick()
                trial = dict(env)
                trial[atom.vars[0]] = value
                trial[atom.vars[2]] = branch
                if self.engine.check(atom, trial):
                    yield trial
                else:
                    self.stats.backtracks += 1
            return
        raise IDLError(
            f"atom {atom.kind} reached with {len(unbound)} unbound "
            f"variables: {unbound}")

    def _solve_and(self, children: list, env: dict) -> Iterator[dict]:
        if not children:
            yield env
            return
        best_index, best_cost = -1, COST_NOT_READY + 1
        for i, child in enumerate(children):
            cost = self._cost(child, env)
            if cost < best_cost:
                best_index, best_cost = i, cost
                if cost == 0:
                    break
        if best_cost >= COST_NOT_READY:
            # No remaining conjunct can run: variables it needs can no
            # longer be bound on this search path (e.g. a negative atom
            # over reads[0] of an empty collect, or an Or-branch entered
            # without its outer context). The branch fails; a counter is
            # kept so tests can flag library-level ordering bugs.
            self.stats.stuck_branches += 1
            return
        chosen = children[best_index]
        rest = children[:best_index] + children[best_index + 1:]
        for extended in self._solve(chosen, env):
            yield from self._solve_and(rest, extended)

    def _cost(self, node, env: dict) -> int:
        return node_cost(node, env, self.context)

    # -- memoized sub-constraints -----------------------------------------------
    def _solve_memo(self, node: LMemo, env: dict) -> Iterator[dict]:
        """Replay the cached canonical solution set through the site's
        variable mapping, filtering against already-bound variables."""
        for sol in self._memo_solutions(node):
            self.stats.tick()
            merged = dict(env)
            consistent = True
            for cname, value in sol.items():
                target = node.mapping.get(cname, cname)
                if target in merged and \
                        not values_equal(merged[target], value):
                    consistent = False
                    break
                merged[target] = value
            if consistent:
                yield merged
            else:
                self.stats.backtracks += 1

    def _memo_solutions(self, node: LMemo) -> list[dict]:
        cache = self.context.analyses.memo_solutions
        solutions = cache.get(node.key)
        if solutions is not None:
            self.stats.memo_hits += 1
            return solutions
        self.stats.memo_misses += 1
        solutions = []
        seen: set = set()
        source = self._solve_plan(node.plan, {}) if node.plan is not None \
            else self._solve(node.canonical, {})
        for env in source:
            key = tuple((k, value_key(v)) for k, v in sorted(env.items()))
            if key in seen:
                continue
            seen.add(key)
            solutions.append(env)
        cache[node.key] = solutions
        return solutions

    def _solve_collect(self, node: LCollect, env: dict,
                       body_plan: Plan | None = None) -> Iterator[dict]:
        """Enumerate all body solutions; bind indexed families.

        Per the paper: collect "capture[s] all possible solutions of a given
        constraint" — a logical ∀, so it never backtracks into alternative
        subsets: there is exactly one extension (possibly with zero
        instances found).
        """
        solutions = self.collect_instances(node, env, body_plan)
        yield from self.apply_collect(node, env, solutions)

    def collect_instances(self, node: LCollect, env: dict,
                          body_plan: Plan | None = None) -> list[dict]:
        """The enumeration half of a collect: distinct body solutions,
        projected onto the instance-0 indexed names (all the extension in
        :meth:`apply_collect` reads — and what the forest's shared
        per-function subquery cache stores)."""
        indexed = sorted(node.indexed_vars())
        solutions: list[dict] = []
        seen: set = set()
        source = self._solve_plan(body_plan, env) if body_plan is not None \
            else self._solve(node.instance, env)
        for sol in source:
            key = tuple(value_key(sol[name]) for name in indexed
                        if name in sol)
            if key in seen:
                continue
            seen.add(key)
            solutions.append({name: sol[name] for name in indexed
                              if name in sol})
            if len(solutions) >= node.limit:
                break
        return solutions

    def apply_collect(self, node: LCollect, env: dict,
                      solutions: list[dict]) -> Iterator[dict]:
        """The extension half of a collect: bind solution ``j``'s indexed
        names through ``index_names[j]`` plus the ``#len`` family markers
        (exactly one extension, or none on an inconsistent binding)."""
        indexed = sorted(node.indexed_vars())
        new_env = dict(env)
        bases: set[str] = set()
        for j, sol in enumerate(solutions):
            mapping = node.index_names[j]
            for name0 in indexed:
                if name0 not in sol:
                    continue
                target = mapping.get(name0, name0)
                if target in new_env and \
                        value_key(new_env[target]) != value_key(sol[name0]):
                    return  # inconsistent with an earlier binding
                new_env[target] = sol[name0]
        for name0 in indexed:
            base = name0[:name0.find("[")] if "[" in name0 else name0
            bases.add(base)
        for base in bases:
            new_env[f"#len:{base}"] = len(solutions)
        yield new_env
