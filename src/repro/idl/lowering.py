"""Lowering: IDL AST → flat constraint tree.

Implements the paper's §4.4 compilation process: "the compiler eliminates
inheritance, forall, forsome, if, rename and rebase. They are replaced with
the simpler conjunction and disjunction constructs. This also involves
removing all parameterizations from the formula and flattening all variable
names."

Flattened variables are plain strings (``inner.iterator``,
``read[2].value``). Renaming (``with {outer} as {inner}``) is dictionary
translation applied to the longest matching dotted prefix; rebasing
(``at {base}``) prefixes every untranslated name, exactly as described in
§3 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import IDLError
from .ast import (
    Atom,
    Calculation,
    Collect,
    Conjunction,
    Disjunction,
    ForAll,
    ForOne,
    ForSome,
    If,
    Inheritance,
    Rename,
    Specification,
    Sym,
    VarRef,
    evaluate_calc,
)

MAX_COLLECT_LIMIT = 64


# ---------------------------------------------------------------------------
# Lowered node classes (what the solver executes)
# ---------------------------------------------------------------------------

@dataclass
class LAtom:
    kind: str
    vars: list[str]
    extra: dict = field(default_factory=dict)
    varlists: list[list[str]] = field(default_factory=list)

    def free_vars(self) -> frozenset[str]:
        # Lowered atoms are immutable once built and their free-variable
        # sets are consulted on every cost ranking; build the set once.
        cached = getattr(self, "_free_vars", None)
        if cached is None:
            names = set(self.vars)
            for vl in self.varlists:
                names.update(vl)
            cached = self._free_vars = frozenset(names)
        return cached

    def __repr__(self) -> str:
        return f"LAtom({self.kind} {self.vars} {self.extra})"


class LAnd:
    """Conjunction. Nested conjunctions are flattened on construction so
    the solver's dynamic ordering operates over one global conjunct pool —
    otherwise a nested group would have to be solved as a unit and could
    strand constraints that need variables bound by its siblings."""

    def __init__(self, children: list):
        flat: list = []
        for child in children:
            if isinstance(child, LAnd):
                flat.extend(child.children)
            else:
                flat.append(child)
        self.children = flat

    def free_vars(self) -> set[str]:
        names: set[str] = set()
        for child in self.children:
            names |= child.free_vars()
        return names

    def __repr__(self) -> str:
        return f"LAnd({len(self.children)} children)"


class LOr:
    """Disjunction. Nested disjunctions are flattened (harmless)."""

    def __init__(self, children: list):
        flat: list = []
        for child in children:
            if isinstance(child, LOr):
                flat.extend(child.children)
            else:
                flat.append(child)
        self.children = flat

    def free_vars(self) -> set[str]:
        names: set[str] = set()
        for child in self.children:
            names |= child.free_vars()
        return names

    def __repr__(self) -> str:
        return f"LOr({len(self.children)} children)"


@dataclass
class LCollect:
    """A lowered ``collect``: instance 0 of the body plus per-index renames.

    ``instance`` is the body lowered with the collect index = 0;
    ``index_names[k]`` maps each instance-0 variable name that depends on
    the index to its name at index k. The solver enumerates all solutions
    of ``instance`` and binds solution j's indexed names via
    ``index_names[j]``.
    """

    index: str
    limit: int
    instance: object
    index_names: list[dict[str, str]]

    def indexed_vars(self) -> set[str]:
        """Instance-0 variable names that depend on the collect index.

        ``index_names[0]`` is the identity (empty) mapping, so the
        index-dependent names are read off instance 1's mapping.
        """
        if len(self.index_names) > 1:
            return set(self.index_names[1].keys())
        return set(self.instance.free_vars())

    def free_vars(self) -> set[str]:
        # Outer variables: those whose name does not depend on the index.
        indexed = self.indexed_vars()
        return {v for v in self.instance.free_vars() if v not in indexed}

    def indexed_base_names(self) -> set[str]:
        """Family base names bound by this collect (e.g. ``read_value``)."""
        return {_family_base(name) for name in self.indexed_vars()}


@dataclass
class LNative:
    """A native (Python-implemented) constraint such as Concat or
    KernelFunction. ``args`` maps declared argument names to resolved
    flattened variable names."""

    name: str
    args: dict[str, str]
    impl: object  # NativeConstraint

    def free_vars(self) -> set[str]:
        return set(self.args.values())


@dataclass
class LMemo:
    """A memoized sub-constraint reference (e.g. ``inherits For``).

    The named specification is lowered once in its own canonical frame
    (``canonical``); every inheritance site shares that lowering and only
    records ``mapping`` — canonical variable name → flattened name at the
    site. The solver enumerates the canonical solution set once per
    function (cached on :class:`FunctionAnalyses`), then replays it through
    the mapping at each site instead of re-deriving the sub-constraint
    inside every idiom. ``plan`` is the canonical execution plan, attached
    by the plan compiler.
    """

    name: str
    key: str
    canonical: object
    mapping: dict[str, str]
    plan: object = None

    def free_vars(self) -> set[str]:
        return set(self.mapping.values())

    def __repr__(self) -> str:
        return f"LMemo({self.name} -> {len(self.mapping)} vars)"


def _family_base(name: str) -> str:
    """``read[0].value`` → ``read``; ``read_value[2]`` → ``read_value``."""
    idx = name.find("[")
    return name[:idx] if idx >= 0 else name


# ---------------------------------------------------------------------------
# Native constraint declaration
# ---------------------------------------------------------------------------

class NativeConstraint:
    """Base class for natively implemented constraints.

    Subclasses declare ``arg_names`` (resolved through rename/rebase like
    IDL variables) and implement ``solve(env, args, context)`` yielding
    extended environments.
    """

    name = "native"
    arg_names: tuple[str, ...] = ()

    def solve(self, env: dict, args: dict[str, str], context):
        raise NotImplementedError

    def planned_bindings(self, args: dict[str, str],
                         bound: frozenset) -> frozenset:
        """Names this constraint binds when solved, for plan compilation.

        The default is conservative (binds nothing); constraints that
        extend the environment (e.g. Concat's output family) override it so
        static plans can schedule their consumers afterwards.
        """
        return frozenset()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

class Registry:
    """Holds named IDL specifications and native constraints."""

    def __init__(self) -> None:
        self._specs: dict[str, Specification] = {}
        self._natives: dict[str, NativeConstraint] = {}

    def add_spec(self, spec: Specification) -> None:
        if spec.name in self._specs or spec.name in self._natives:
            raise IDLError(f"duplicate constraint name {spec.name!r}")
        self._specs[spec.name] = spec

    def add_native(self, native: NativeConstraint) -> None:
        if native.name in self._specs or native.name in self._natives:
            raise IDLError(f"duplicate constraint name {native.name!r}")
        self._natives[native.name] = native

    def spec(self, name: str) -> Specification:
        try:
            return self._specs[name]
        except KeyError:
            raise IDLError(f"unknown constraint {name!r}") from None

    def native(self, name: str) -> NativeConstraint | None:
        return self._natives.get(name)

    def has(self, name: str) -> bool:
        return name in self._specs or name in self._natives

    def names(self) -> list[str]:
        return sorted(list(self._specs) + list(self._natives))


# ---------------------------------------------------------------------------
# Lowering context and algorithm
# ---------------------------------------------------------------------------

@dataclass
class _Context:
    """One lexical layer of variable resolution.

    ``translation`` maps an inner name prefix to an *absolute* outer name
    (already resolved against the parent chain). ``prefix`` is the *raw*
    rebase prefix relative to the parent — after prefixing, resolution
    continues up the parent chain so nested rebases compose
    (``a.b.c`` style names, as in the paper's ``inner.iterator``).
    """

    params: dict[str, int]
    translation: dict[str, str]
    prefix: str | None
    parent: "_Context | None" = None


class Lowerer:
    """Lowers named specifications to solvable trees.

    ``memo_specs`` names building-block constraints (e.g. ``For``) whose
    inheritance sites lower to :class:`LMemo` references against one shared
    canonical lowering, so the solver can enumerate them once per function
    instead of once per enclosing idiom. Only pure atom/and/or constraints
    are memoizable; anything containing collects or natives falls back to
    inline lowering.
    """

    def __init__(self, registry: Registry,
                 memo_specs: frozenset[str] | set[str] = frozenset()):
        self.registry = registry
        self.memo_specs = frozenset(memo_specs)
        self._depth = 0
        self._canonical_cache: dict[tuple, object] = {}
        self._memo_in_progress: set[str] = set()

    # -- variable flattening -------------------------------------------------
    def flatten_var(self, var: VarRef, ctx: _Context) -> str:
        parts: list[str] = []
        for comp in var.components:
            if comp.index_hi is not None:
                raise IDLError(
                    f"range reference {var} outside a variable list")
            if comp.index is not None:
                idx = evaluate_calc(comp.index, ctx.params)
                parts.append(f"{comp.name}[{idx}]")
            else:
                parts.append(comp.name)
        return self.resolve_name(".".join(parts), ctx)

    def resolve_name(self, name: str, ctx: _Context | None) -> str:
        """Apply rename dictionaries (longest dotted prefix) and rebase
        prefixes up the context chain."""
        while ctx is not None:
            segments = name.split(".")
            for cut in range(len(segments), 0, -1):
                key = ".".join(segments[:cut])
                if key in ctx.translation:
                    rest = segments[cut:]
                    # Translation targets are absolute: resolution stops.
                    return ".".join([ctx.translation[key]] + rest)
            if ctx.prefix is not None:
                name = f"{ctx.prefix}.{name}"
            ctx = ctx.parent
        return name

    def flatten_varlist(self, refs: list[VarRef], ctx: _Context) -> list[str]:
        names: list[str] = []
        for ref in refs:
            if ref.is_range():
                names.extend(self._expand_range(ref, ctx))
            else:
                names.append(self.flatten_var(ref, ctx))
        return names

    def _expand_range(self, ref: VarRef, ctx: _Context) -> list[str]:
        ranged = [i for i, c in enumerate(ref.components)
                  if c.index_hi is not None]
        if len(ranged) != 1:
            raise IDLError(f"variable {ref} must contain exactly one range")
        pos = ranged[0]
        comp = ref.components[pos]
        lo = evaluate_calc(comp.index, ctx.params)
        hi = evaluate_calc(comp.index_hi, ctx.params)
        names = []
        for i in range(lo, hi + 1):
            parts = []
            for j, c in enumerate(ref.components):
                if j == pos:
                    parts.append(f"{c.name}[{i}]")
                elif c.index is not None:
                    parts.append(
                        f"{c.name}[{evaluate_calc(c.index, ctx.params)}]")
                else:
                    parts.append(c.name)
            names.append(self.resolve_name(".".join(parts), ctx))
        return names

    # -- node lowering -------------------------------------------------------------
    def lower_spec(self, name: str, params: dict[str, int] | None = None):
        """Lower a named specification to a solvable tree."""
        ctx = _Context(dict(params or {}), {}, None, None)
        return self._lower_named(name, ctx)

    def _lower_named(self, name: str, ctx: _Context):
        native = self.registry.native(name)
        if native is not None:
            args = {arg: self.resolve_name(arg, ctx)
                    for arg in native.arg_names}
            return LNative(name, args, native)
        if name in self.memo_specs and name not in self._memo_in_progress:
            memo = self._lower_memo(name, ctx)
            if memo is not None:
                return memo
        spec = self.registry.spec(name)
        self._depth += 1
        if self._depth > 64:
            raise IDLError(f"inheritance too deep (cycle through {name!r}?)")
        try:
            return self.lower(spec.constraint, ctx)
        finally:
            self._depth -= 1

    def _lower_memo(self, name: str, ctx: _Context) -> "LMemo | None":
        """Build an LMemo reference for ``name``, or None if unmemoizable."""
        key_params = tuple(sorted(ctx.params.items()))
        cache_key = (name, key_params)
        canonical = self._canonical_cache.get(cache_key)
        if canonical is None:
            self._memo_in_progress.add(name)
            try:
                canonical = self._lower_named(
                    name, _Context(dict(ctx.params), {}, None, None))
            finally:
                self._memo_in_progress.discard(name)
            if not _memoizable(canonical):
                canonical = False
            self._canonical_cache[cache_key] = canonical
        if canonical is False:
            return None
        mapping = {v: self.resolve_name(v, ctx)
                   for v in sorted(canonical.free_vars())}
        params_text = ",".join(f"{k}={v}" for k, v in key_params)
        return LMemo(name, f"{name}({params_text})", canonical, mapping)

    def lower(self, node, ctx: _Context):
        if isinstance(node, Atom):
            return LAtom(node.kind,
                         [self.flatten_var(v, ctx) for v in node.vars],
                         dict(node.extra),
                         [self.flatten_varlist(vl, ctx)
                          for vl in node.varlists])
        if isinstance(node, Conjunction):
            return LAnd([self.lower(c, ctx) for c in node.children])
        if isinstance(node, Disjunction):
            return LOr([self.lower(c, ctx) for c in node.children])
        if isinstance(node, Inheritance):
            translation = {}
            for outer, inner in node.renames:
                inner_name = self._plain_name(inner, ctx)
                translation[inner_name] = self.flatten_var(outer, ctx)
            prefix = self._plain_name(node.base, ctx) if node.base else None
            params = {k: evaluate_calc(v, ctx.params)
                      for k, v in node.params.items()}
            child = _Context(params, translation, prefix, parent=ctx)
            return self._lower_named(node.name, child)
        if isinstance(node, Rename):
            translation = {}
            for outer, inner in node.renames:
                inner_name = self._plain_name(inner, ctx)
                translation[inner_name] = self.flatten_var(outer, ctx)
            prefix = self._plain_name(node.base, ctx) if node.base else None
            child = _Context(dict(ctx.params), translation, prefix, parent=ctx)
            return self.lower(node.constraint, child)
        if isinstance(node, ForAll):
            return LAnd(self._expand_quantifier(node, ctx))
        if isinstance(node, ForSome):
            return LOr(self._expand_quantifier(node, ctx))
        if isinstance(node, ForOne):
            params = dict(ctx.params)
            params[node.name] = evaluate_calc(node.value, ctx.params)
            return self.lower(
                node.constraint,
                _Context(params, ctx.translation, ctx.prefix, ctx.parent))
        if isinstance(node, If):
            lhs = evaluate_calc(node.lhs, ctx.params)
            rhs = evaluate_calc(node.rhs, ctx.params)
            chosen = node.then if lhs == rhs else node.otherwise
            return self.lower(chosen, ctx)
        if isinstance(node, Collect):
            return self._lower_collect(node, ctx)
        raise IDLError(f"cannot lower node {type(node).__name__}")

    def _plain_name(self, var: VarRef, ctx: _Context) -> str:
        """Flatten an *inner* rename target without applying translations."""
        parts = []
        for comp in var.components:
            if comp.index is not None:
                idx = evaluate_calc(comp.index, ctx.params)
                parts.append(f"{comp.name}[{idx}]")
            else:
                parts.append(comp.name)
        return ".".join(parts)

    def _expand_quantifier(self, node, ctx: _Context) -> list:
        lo = evaluate_calc(node.lo, ctx.params)
        hi = evaluate_calc(node.hi, ctx.params)
        children = []
        for i in range(lo, hi + 1):
            params = dict(ctx.params)
            params[node.index] = i
            children.append(self.lower(
                node.constraint,
                _Context(params, ctx.translation, ctx.prefix, ctx.parent)))
        return children

    def _lower_collect(self, node: Collect, ctx: _Context) -> LCollect:
        limit = min(node.limit, MAX_COLLECT_LIMIT)
        instances = []
        for k in range(limit):
            params = dict(ctx.params)
            params[node.index] = k
            instances.append(self.lower(
                node.constraint,
                _Context(params, ctx.translation, ctx.prefix, ctx.parent)))
        if not instances:
            raise IDLError("collect with zero limit")
        index_names: list[dict[str, str]] = []
        for k in range(limit):
            pairs = list(zip(_positional_vars(instances[0]),
                             _positional_vars(instances[k])))
            mapping = {v0: vk for v0, vk in pairs if v0 != vk}
            index_names.append(mapping)
        if limit > 1 and not index_names[1]:
            # The index never appears in a variable name: nothing to bind.
            raise IDLError(
                f"collect index {node.index!r} unused in variable names")
        return LCollect(node.index, limit, instances[0], index_names)


def _memoizable(lowered) -> bool:
    """Memoized solution replay supports plain atom/and/or trees only:
    collects and natives extend the environment in ways a cached canonical
    solution set cannot represent (``#len`` markers, family bindings)."""
    if isinstance(lowered, LAtom):
        return True
    if isinstance(lowered, (LAnd, LOr)):
        return all(_memoizable(c) for c in lowered.children)
    return False


def _positional_vars(node) -> list[str]:
    """Variable names of a lowered tree in deterministic structural order.

    Two lowerings of the same AST produce structurally identical trees, so
    positional alignment gives an exact name correspondence between collect
    instances (robust against lexicographic quirks like read[10] < read[2]).
    """
    names: list[str] = []
    if isinstance(node, LAtom):
        names.extend(node.vars)
        for vl in node.varlists:
            names.extend(vl)
    elif isinstance(node, (LAnd, LOr)):
        for child in node.children:
            names.extend(_positional_vars(child))
    elif isinstance(node, LCollect):
        names.extend(sorted(node.free_vars()))
    elif isinstance(node, LNative):
        for arg in sorted(node.args):
            names.append(node.args[arg])
    elif isinstance(node, LMemo):
        for cname in sorted(node.mapping):
            names.append(node.mapping[cname])
    return names
