"""Cross-idiom plan forest: one fused matching network for a whole library.

The paper's scalability argument (§4.4) is that constraint solving stays
tractable because variable ordering and shared sub-constraints are *static*
properties of the idiom library. The per-idiom executor in :mod:`.solver`
exploits that within one idiom; this module exploits it **across** the
library, RETE-style: instead of N independent solves per function, the
per-idiom plans are merged into a prefix trie keyed on lowered-constraint
structure (:func:`~repro.idl.plan.plan_signature`), so conjunct prefixes
several idioms share — the ``For``/``ForNest`` building blocks above all —
execute once per function with their partial environments fanned out into
each idiom's suffix.

Three mechanisms stack:

* **Feasibility signatures** (:class:`FeasibilitySignature`) are computed
  per idiom at compile time from the lowered tree: the opcodes a match
  provably requires and the minimum natural-loop depth implied by its
  chained loop building blocks. They are checked against the per-function
  opcode index (:attr:`FunctionAnalyses.opcode_set`) before any solving,
  so infeasible (function, idiom) pairs never touch the solver.
* **The prefix trie** shares step execution. Equal
  :func:`~repro.idl.plan.plan_signature` prefixes imply the exact same
  search in the exact same order, so sharing preserves each idiom's
  solution enumeration bit for bit. Once a path narrows to a single
  idiom it collapses into a flat tail executed without trie overhead.
* **A shared per-function subquery memo** (on
  :attr:`FunctionAnalyses.subquery_cache`) persists across all idioms in
  one detection pass. Self-contained steps — disjunction units like
  ``VectorRead``/``Sextable`` and ``collect`` bodies — are keyed by their
  *root-canonicalized* structure plus the identity of their context
  bindings, so structurally identical subqueries enumerate once per
  context and replay everywhere else, across sites, across idioms, and
  across renamings (SPMV's ``output`` store and Stencil1D's ``write``
  store are one cache line).

Execution-order equivalence is the design invariant throughout: for every
idiom, the sequence of solutions the forest emits is identical to what the
per-idiom plan executor would emit, so match sets (and the representative
chosen among witness variants) are bit-identical to ``ordering="plan"``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import IDLError
from .atoms import COST_NOT_READY, value_key
from .lowering import LAnd, LAtom, LMemo, LOr, _memoizable
from .plan import (
    AndPlan,
    CollectPlan,
    OrPlan,
    Plan,
    node_cost,
    plan_signature,
    simulated_env,
)

#: Context-binding marker for a subquery context variable the environment
#: has not bound yet (the step's own generators will bind it).
_UNBOUND = ("#unbound",)


# ---------------------------------------------------------------------------
# Feasibility signatures
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FeasibilitySignature:
    """Compile-time necessary conditions for an idiom to match anywhere
    in a function.

    ``required_opcodes`` are opcodes some variable *must* bind an
    instruction of (conjunctive ``opcode`` atoms; disjunctions contribute
    only the intersection of their branches, collects and natives nothing
    — a collect may be satisfied by zero instances). ``min_loop_depth``
    is the length of the longest chain of required loop building blocks
    linked by nesting constraints. Both are necessary conditions: a
    function failing either check provably has no match, so skipping the
    solve cannot change the match set.
    """

    required_opcodes: frozenset[str]
    min_loop_depth: int

    def admits(self, analyses) -> bool:
        if not self.required_opcodes <= analyses.opcode_set:
            return False
        return self.min_loop_depth == 0 or \
            analyses.max_loop_depth >= self.min_loop_depth


def required_opcodes(node) -> frozenset[str]:
    """Opcodes every solution of ``node`` must bind an instruction of."""
    if isinstance(node, LAtom):
        if node.kind == "opcode" and not node.extra.get("negated"):
            return frozenset((node.extra["opcode"],))
        return frozenset()
    if isinstance(node, LAnd):
        out: set[str] = set()
        for child in node.children:
            out |= required_opcodes(child)
        return frozenset(out)
    if isinstance(node, LOr):
        if not node.children:
            return frozenset()
        out = required_opcodes(node.children[0])
        for child in node.children[1:]:
            out &= required_opcodes(child)
        return out
    if isinstance(node, LMemo):
        # A memo reference yields nothing when its canonical solution set
        # is empty, so the canonical requirements carry over.
        return required_opcodes(node.canonical)
    # Collects are satisfied by zero instances; natives assert nothing
    # the opcode index can see.
    return frozenset()


def _loop_memo_shape(memo: LMemo) -> tuple[str, frozenset[str]] | None:
    """Identify a memoized building block that forces a natural loop.

    Looks for the back-edge pattern ``For`` exhibits: a branch ``latch``
    with a control edge to ``begin``, a phi dominated by ``begin`` that
    is fed from ``latch`` by a value using the phi as an operand. Under
    verified SSA, the phi dominates its user, which dominates the feeding
    branch (incoming values dominate their edge), so ``begin`` dominates
    ``latch`` — making ``latch → begin`` a back edge to a dominator,
    i.e. a natural loop that :class:`~repro.analysis.loops.LoopInfo`
    reports.

    Returns ``(begin, body_entries)`` in *canonical* names, or None.
    ``body_entries`` are the loop's conditional-side branch targets: a
    control-edge target ``t`` of a branch ``s`` that ``begin`` dominates,
    where ``t`` is not the branch's post-dominating (on-every-path) exit
    side. Only such a name witnesses nesting — it is off the loop's
    zero-trip bypass path, so if it dominates another loop's header, that
    header is reachable only through this loop's body. A header or
    successor dominating another header proves nothing (sequential loops
    do that), so those names are deliberately excluded.
    """
    atoms: list[LAtom] = []
    _conjunctive_atoms(memo.canonical, atoms)
    edges = {(a.vars[0], a.vars[1]) for a in atoms
             if a.kind == "edge" and a.extra.get("edge") == "control"}
    doms = {(a.vars[0], a.vars[1]) for a in atoms
            if a.kind == "dominates" and not a.extra.get("negated")
            and not a.extra.get("post")}
    postdoms = {(a.vars[0], a.vars[1]) for a in atoms
                if a.kind == "dominates" and not a.extra.get("negated")
                and a.extra.get("post")}
    uses = {(a.vars[0], a.vars[1]) for a in atoms
            if a.kind == "argument_of"}
    for value, phi, latch in ((a.vars[0], a.vars[1], a.vars[2])
                              for a in atoms if a.kind == "reaches_phi"):
        for begin in (b for (lt, b) in edges if lt == latch):
            if (begin, phi) not in doms or (phi, value) not in uses:
                continue
            body_entries = frozenset(
                t for (s, t) in edges
                if (begin, s) in doms and t != begin
                and (t, s) not in postdoms)
            return begin, body_entries
    return None


def _conjunctive_atoms(node, out: list[LAtom]) -> None:
    """Atoms on the conjunctive spine (disjunction/collect subtrees are
    skipped: their constraints are not unconditionally required)."""
    if isinstance(node, LAtom):
        out.append(node)
    elif isinstance(node, LAnd):
        for child in node.children:
            _conjunctive_atoms(child, out)


def _conjunctive_memos(node, out: list[LMemo]) -> None:
    if isinstance(node, LMemo):
        out.append(node)
    elif isinstance(node, LAnd):
        for child in node.children:
            _conjunctive_memos(child, out)


def min_loop_depth(node) -> int:
    """Minimum natural-loop nesting depth any match of ``node`` implies.

    Required loop building blocks (see :func:`_loop_memo_shape`) each
    demand one natural loop; a required ``control flow dominates`` atom
    from one loop's *body entry* into another's ``begin`` pins the second
    loop's header behind the first loop's body, chaining them into a
    nest. The result is the longest such chain — e.g. 3 for
    ``ForNest(N=3)``, 2 for SPMV's outer/inner pair, 1 for a lone
    ``For``. Dominance between headers or from a loop's successor proves
    nothing (sequential loops exhibit both) and never creates an edge —
    under-estimating the depth only makes the pre-filter less aggressive,
    never unsound.
    """
    memos: list[LMemo] = []
    _conjunctive_memos(node, memos)
    loops = []
    for memo in memos:
        shape = _loop_memo_shape(memo)
        if shape is not None:
            loops.append((memo, shape))
    if not loops:
        return 0
    atoms: list[LAtom] = []
    _conjunctive_atoms(node, atoms)
    doms = [(a.vars[0], a.vars[1]) for a in atoms
            if a.kind == "dominates" and not a.extra.get("negated")
            and not a.extra.get("post")]
    # Site-name body entries and begins, through each memo's mapping.
    bodies = [frozenset(m.mapping[v] for v in shape[1] if v in m.mapping)
              for m, shape in loops]
    begins = [m.mapping.get(shape[0]) for m, shape in loops]
    children: dict[int, list[int]] = {i: [] for i in range(len(loops))}
    for i in range(len(loops)):
        for j in range(len(loops)):
            if i == j or begins[j] is None:
                continue
            if any(a in bodies[i] and b == begins[j] for a, b in doms):
                children[i].append(j)

    depth_cache: dict[int, int] = {}

    def chain(i: int, visiting: frozenset) -> int:
        if i in depth_cache:
            return depth_cache[i]
        if i in visiting:  # defensive: cyclic nesting cannot occur
            return 1
        below = [chain(j, visiting | {i}) for j in children[i]]
        depth_cache[i] = 1 + max(below, default=0)
        return depth_cache[i]

    return max(chain(i, frozenset()) for i in range(len(loops)))


def feasibility_signature(lowered) -> FeasibilitySignature:
    """Compile an idiom's lowered constraint into its pre-filter."""
    return FeasibilitySignature(required_opcodes(lowered),
                                min_loop_depth(lowered))


# ---------------------------------------------------------------------------
# Guaranteed bindings / static readiness
# ---------------------------------------------------------------------------

def guaranteed_binds(plan: Plan) -> frozenset:
    """Names bound in *every* environment a plan step yields.

    Unlike ``plan.binds`` (the compiler's optimistic simulation), this is
    the pessimistic set: a collect guarantees only its ``#len`` markers
    (it may find zero instances), a disjunction only the intersection of
    its branches. Steps whose inputs are guaranteed by their predecessors
    need no runtime readiness check — the cost model is monotone in the
    bound set, so a step ready under the guaranteed subset is ready under
    any actual environment extending it.
    """
    if isinstance(plan, AndPlan):
        out: frozenset = frozenset()
        for step in plan.steps:
            out |= guaranteed_binds(step)
        return out
    if isinstance(plan, OrPlan):
        if not plan.branches:
            return frozenset()
        out = guaranteed_binds(plan.branches[0])
        for branch in plan.branches[1:]:
            out &= guaranteed_binds(branch)
        return out
    if isinstance(plan, CollectPlan):
        return frozenset(f"#len:{base}"
                         for base in plan.node.indexed_base_names())
    if isinstance(plan.node, LMemo):
        return frozenset(plan.node.mapping.values())
    return plan.binds  # atom / native leaves bind what they planned


def _provably_ready(step: Plan, guaranteed: frozenset) -> bool:
    return node_cost(step.node, simulated_env(guaranteed),
                     None) < COST_NOT_READY


# ---------------------------------------------------------------------------
# Root-canonical subquery signatures
# ---------------------------------------------------------------------------
# Flattened names are dotted paths over a root segment (``output.address``,
# ``read[2].value``). The natives and family markers build names from the
# structure after the root, so canonicalizing only the root segment keeps
# the name algebra intact while making renamed-but-isomorphic subqueries
# (``output.*`` vs ``write.*``) key equal.

def _name_root(name: str) -> tuple[str, str]:
    cut = len(name)
    for sep in (".", "["):
        pos = name.find(sep)
        if pos >= 0:
            cut = min(cut, pos)
    return name[:cut], name[cut:]


class _Canonicalizer:
    """Assigns ``$0, $1, ...`` to name roots in first-appearance order."""

    def __init__(self):
        self.roots: dict[str, str] = {}

    def name(self, name: str) -> str:
        if name.startswith("#len:"):
            return "#len:" + self.name(name[5:])
        root, suffix = _name_root(name)
        canon = self.roots.get(root)
        if canon is None:
            canon = self.roots[root] = f"${len(self.roots)}"
        return canon + suffix


# ---------------------------------------------------------------------------
# Step execution records
# ---------------------------------------------------------------------------

class _StepExec:
    """Everything the executor needs to run one plan step.

    ``cache_key``/``context``/``retarget`` are set for self-contained
    subquery steps (pure disjunction units and collect bodies): the step's
    results are memoized in the function-wide subquery cache under its
    canonical structure plus the identity of its context bindings, and
    replayed through ``retarget`` (canonical root → site root).
    """

    __slots__ = ("step", "node", "needs_ready_check", "kind", "cache_key",
                 "context", "retarget", "rest_nodes")

    def __init__(self, step: Plan, needs_ready_check: bool,
                 rest_nodes: list):
        self.step = step
        self.node = step.node
        self.needs_ready_check = needs_ready_check
        #: Remaining lowered conjuncts from this step on — the dynamic
        #: fallback input when the step is not ready at runtime.
        self.rest_nodes = rest_nodes
        self.kind = "plain"
        self.cache_key: tuple | None = None
        self.context: tuple[str, ...] = ()
        self.retarget: dict[str, str] = {}
        if isinstance(step, CollectPlan) and \
                _memoizable(step.node.instance):
            self.kind = "collect"
            # The *instance* free vars, not the collect's outer vars: the
            # body solve is restricted by any instance-0 indexed name the
            # environment happens to bind, so those belong in the key too
            # (they hash as _UNBOUND in the common case).
            free = step.node.instance.free_vars()
        elif isinstance(step, OrPlan) and _memoizable(step.node):
            self.kind = "or"
            free = step.node.free_vars()
        else:
            return
        canon = _Canonicalizer()
        signature = plan_signature(step, canon.name)
        # Context order must agree between sites sharing a signature:
        # sort by the canonical form, keep the site names for lookups.
        self.context = tuple(name for _, name in
                             sorted((canon.name(v), v) for v in free))
        self.cache_key = signature
        self.retarget = {c: site for site, c in canon.roots.items()}


def _retarget_name(name: str, roots: dict[str, str]) -> str:
    root, suffix = _name_root(name)
    return roots[root] + suffix


# ---------------------------------------------------------------------------
# The trie
# ---------------------------------------------------------------------------

class ForestNode:
    """One shared plan step; children keyed by structural signature.

    A node whose subtree serves a single idiom is collapsed: ``tail``
    holds that idiom's remaining step records and the executor runs them
    as a flat chain (plan-executor style) instead of walking the trie.
    """

    __slots__ = ("step", "depth", "idioms", "sinks", "children",
                 "_child_index", "exec")

    def __init__(self, step: Plan, depth: int, exec_info: _StepExec):
        self.step = step
        self.depth = depth
        #: Idioms whose plan passes through this node, registration order.
        self.idioms: list[str] = []
        #: Idioms whose plan *ends* with this step.
        self.sinks: list[str] = []
        self.children: list[ForestNode] = []
        self._child_index: dict[tuple, ForestNode] = {}
        self.exec = exec_info


class PlanForest:
    """The merged execution plan of a whole idiom library."""

    def __init__(self, order: tuple[str, ...]):
        self.order = order
        #: Per-idiom execution records, one per plan step.
        self.step_execs: dict[str, list[_StepExec]] = {}
        self.signatures: dict[str, FeasibilitySignature] = {}
        self.roots: list[ForestNode] = []
        self._root_index: dict[tuple, ForestNode] = {}
        #: Shared/total step counts, for introspection and tests.
        self.shared_steps = 0
        self.total_steps = 0

    def feasible(self, analyses) -> list[str]:
        """The idioms whose signatures admit this function."""
        return [name for name in self.order
                if self.signatures[name].admits(analyses)]


def build_forest(order: list[str] | tuple[str, ...],
                 plans: dict[str, Plan],
                 lowered: dict[str, object]) -> PlanForest:
    """Merge per-idiom plans into one prefix-sharing trie.

    Idioms are inserted in registration order; a step extends the shared
    path while its :func:`plan_signature` (structure + schedule + assumed
    bindings) matches, which guarantees any two idioms sharing a node
    would have executed that exact search step identically.
    """
    forest = PlanForest(tuple(order))
    for name in forest.order:
        plan = plans[name]
        steps = list(plan.steps) if isinstance(plan, AndPlan) else [plan]
        if not steps:
            raise IDLError(f"idiom {name!r} compiled to an empty plan")
        forest.signatures[name] = feasibility_signature(lowered[name])
        lowered_nodes = [s.node for s in steps]
        execs: list[_StepExec] = []
        guaranteed: frozenset = frozenset()
        for depth, step in enumerate(steps):
            execs.append(_StepExec(step,
                                   not _provably_ready(step, guaranteed),
                                   lowered_nodes[depth:]))
            guaranteed |= guaranteed_binds(step)
        forest.step_execs[name] = execs

        level_index = forest._root_index
        level_list = forest.roots
        node: ForestNode | None = None
        for depth, step in enumerate(steps):
            signature = plan_signature(step)
            node = level_index.get(signature)
            forest.total_steps += 1
            if node is None:
                node = ForestNode(step, depth, execs[depth])
                level_index[signature] = node
                level_list.append(node)
            else:
                forest.shared_steps += 1
            node.idioms.append(name)
            level_index = node._child_index
            level_list = node.children
        node.sinks.append(name)
    return forest


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def execute_forest(solver, forest: PlanForest,
                   active: list[str]) -> dict[str, list[dict]]:
    """Run the forest over one function for the ``active`` idioms.

    Returns per-idiom solution lists identical — contents *and* order —
    to ``solver.solutions(lowered, plan)`` run per idiom. ``solver`` is a
    fresh :class:`~repro.idl.solver.Solver` for the function; its stats
    accumulate the whole pass.
    """
    out: dict[str, list[dict]] = {name: [] for name in active}
    seen: dict[str, set] = {name: set() for name in active}
    live = set(active)
    max_solutions = solver.limits.max_solutions
    stats = solver.stats
    context = solver.context
    cache = context.analyses.subquery_cache

    def emit(idiom: str, env: dict) -> None:
        clean = {k: v for k, v in env.items() if not k.startswith("#")}
        key = tuple((k, value_key(v)) for k, v in sorted(clean.items()))
        bucket = seen[idiom]
        if key in bucket:
            return
        bucket.add(key)
        out[idiom].append(clean)
        if len(out[idiom]) >= max_solutions:
            live.discard(idiom)

    def step_envs(info: _StepExec, env: dict):
        """Environment extensions of one step, through the subquery cache
        for self-contained steps."""
        if info.cache_key is None:
            return solver._solve_plan(info.step, env)
        bound = tuple(id(env[v]) if v in env else _UNBOUND
                      for v in info.context)
        key = (info.cache_key, bound)
        if info.kind == "collect":
            cached = cache.get(key)
            if cached is None:
                instances = solver.collect_instances(info.node, env,
                                                     info.step.body)
                # Stored under canonical names: a renamed-but-isomorphic
                # collect at another site shares this entry and retargets
                # on replay (exactly like the disjunction deltas below).
                canon = {site: c for c, site in info.retarget.items()}
                cache[key] = [tuple((_retarget_name(k, canon), v)
                                    for k, v in sol.items())
                              for sol in instances]
            else:
                stats.subquery_hits += 1
                roots = info.retarget
                instances = [{_retarget_name(ck, roots): v
                              for ck, v in sol} for sol in cached]
            return solver.apply_collect(info.node, env, instances)
        deltas = cache.get(key)
        if deltas is not None:
            stats.subquery_hits += 1

            def replay():
                roots = info.retarget
                for delta in deltas:
                    new_env = dict(env)
                    for cname, value in delta:
                        new_env[_retarget_name(cname, roots)] = value
                    yield new_env
            return replay()

        def produce():
            # Stream extensions while recording them; the entry is only
            # committed on full enumeration (an abandoned search would
            # otherwise cache a truncated result set).
            canon = {site: c for c, site in info.retarget.items()}
            recorded = []
            for extended in solver._solve_plan(info.step, env):
                recorded.append(tuple(
                    (_retarget_name(k, canon), v)
                    for k, v in extended.items() if k not in env))
                yield extended
            cache[key] = recorded
        return produce()

    def run_tail(idiom: str, execs: list[_StepExec], index: int,
                 env: dict) -> None:
        """Flat per-idiom execution of an exclusive suffix (mirrors
        Solver._solve_and_plan, plus the static-readiness elision and the
        subquery cache)."""
        if index == len(execs):
            emit(idiom, env)
            return
        info = execs[index]
        if info.needs_ready_check and \
                node_cost(info.node, env, context) >= COST_NOT_READY:
            stats.plan_fallbacks += 1
            for solution in solver._solve_and(info.rest_nodes, env):
                emit(idiom, solution)
                if idiom not in live:
                    return
            return
        for extended in step_envs(info, env):
            run_tail(idiom, execs, index + 1, extended)
            if idiom not in live:
                return

    def run(node: ForestNode, env: dict) -> None:
        idioms = node.idioms
        if len(idioms) == 1:
            idiom = idioms[0]
            if idiom in live:
                run_tail(idiom, forest.step_execs[idiom], node.depth, env)
            return
        relevant = [i for i in idioms if i in live]
        if not relevant:
            return
        info = node.exec
        if info.needs_ready_check and \
                node_cost(info.node, env, context) >= COST_NOT_READY:
            # The shared path assumed a binding this search path did not
            # produce. Exactly like the per-idiom executor, the remainder
            # re-derives its order dynamically — but the remainder now
            # differs per idiom, so the environment fans out here.
            for idiom in relevant:
                stats.plan_fallbacks += 1
                rest = forest.step_execs[idiom][node.depth].rest_nodes
                for solution in solver._solve_and(rest, env):
                    emit(idiom, solution)
                    if idiom not in live:
                        break
            return
        for extended in step_envs(info, env):
            for idiom in node.sinks:
                if idiom in live:
                    emit(idiom, extended)
            for child in node.children:
                run(child, extended)
            if not any(i in live for i in idioms):
                return

    for root in forest.roots:
        run(root, {})
    return out
