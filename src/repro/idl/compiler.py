"""IDL compiler facade: source → registry → lowered constraints → plans →
solutions.

This is the user-facing entry point mirroring the paper's Figure 1 pipeline
(idiom description → constraint formula → solver)::

    from repro.idl import IdiomCompiler

    idl = IdiomCompiler()
    idl.load('''
    Constraint FactorizationOpportunity
    ( {sum} is add instruction and ... )
    End
    ''')
    for match in idl.match(function, "FactorizationOpportunity"):
        print(match["sum"], match["factor"])

Each named constraint is lowered once and compiled to a static execution
plan once (paper §4.4); both are cached. ``match`` executes the cached
plan; passing ``ordering="dynamic"``/``memo=False``/``indexed=False``
restores the seed's per-step dynamic behaviour for benchmarking, and
``ordering="forest"`` (or :meth:`IdiomCompiler.match_library` directly)
routes the solve through the cross-idiom plan forest
(:mod:`repro.idl.forest`): several idioms matched in one fused pass with
compile-time feasibility pre-filters and shared constraint prefixes —
same match sets, bit for bit.
"""

from __future__ import annotations

import hashlib

from ..analysis.info import FunctionAnalyses
from ..errors import IDLError
from ..ir.module import Function, Module
from .forest import PlanForest, build_forest, execute_forest
from .lowering import Lowerer, Registry
from .natives import standard_natives
from .parser import parse_idl
from .plan import Plan, compile_plan
from .solver import SolveLimits, Solver, SolverStats

#: Building-block constraints solved once per function and replayed at
#: every inheritance site (see :class:`~repro.idl.lowering.LMemo`).
DEFAULT_MEMO_SPECS = frozenset({"For"})


class IdiomCompiler:
    """Holds a constraint registry and compiles/solves idiom descriptions."""

    def __init__(self, load_natives: bool = True,
                 memo_specs: frozenset[str] | set[str] | None = None):
        self.registry = Registry()
        self.memo_specs = frozenset(
            DEFAULT_MEMO_SPECS if memo_specs is None else memo_specs)
        self._lowered_cache: dict[tuple, object] = {}
        self._plan_cache: dict[tuple, Plan] = {}
        self._forest_cache: dict[tuple, PlanForest] = {}
        self._lowerers: dict[bool, Lowerer] = {}
        self._sources: list[str] = []
        self._signature: str | None = None
        if load_natives:
            for native in standard_natives():
                self.registry.add_native(native)

    # -- registry -----------------------------------------------------------------
    def load(self, source: str, filename: str = "<idl>") -> list[str]:
        """Parse IDL source and register every specification in it."""
        specs = parse_idl(source, filename)
        for spec in specs:
            self.registry.add_spec(spec)
        self._sources.append(source)
        self._signature = None
        self._lowered_cache.clear()
        self._plan_cache.clear()
        self._forest_cache.clear()
        self._lowerers.clear()
        return [spec.name for spec in specs]

    def names(self) -> list[str]:
        return self.registry.names()

    def library_signature(self) -> str:
        """Digest of everything this compiler contributes to match sets:
        every loaded IDL source (in load order), the registered
        constraint names (native constraints included) and the memoized
        building-block set. This is the idiom-library input of the
        artifact cache's fingerprints (:mod:`repro.cache.fingerprint`).
        Native *implementations* are python code and not hashable here —
        changing one requires bumping
        :data:`repro.cache.fingerprint.FINGERPRINT_VERSION`."""
        if self._signature is None:
            h = hashlib.sha256()
            h.update(",".join(sorted(self.registry.names())).encode())
            h.update(b"\x00")
            h.update(",".join(sorted(self.memo_specs)).encode())
            for source in self._sources:
                h.update(b"\x00")
                h.update(source.encode())
            self._signature = h.hexdigest()
        return self._signature

    # -- compilation -----------------------------------------------------------------
    def _lowerer(self, memo: bool) -> Lowerer:
        if memo not in self._lowerers:
            self._lowerers[memo] = Lowerer(
                self.registry, self.memo_specs if memo else frozenset())
        return self._lowerers[memo]

    def compile(self, name: str, params: dict[str, int] | None = None,
                memo: bool = True):
        """Lower a named constraint to its solvable form (cached)."""
        key = (name, tuple(sorted((params or {}).items())), memo)
        if key not in self._lowered_cache:
            self._lowered_cache[key] = self._lowerer(memo).lower_spec(
                name, params)
        return self._lowered_cache[key]

    def plan_for(self, name: str, params: dict[str, int] | None = None,
                 memo: bool = True) -> Plan:
        """The static execution plan of a named constraint (cached)."""
        key = (name, tuple(sorted((params or {}).items())), memo)
        if key not in self._plan_cache:
            self._plan_cache[key] = compile_plan(self.compile(
                name, params, memo))
        return self._plan_cache[key]

    def forest_for(self, names: list[str] | tuple[str, ...],
                   memo: bool = True) -> PlanForest:
        """The cross-idiom plan forest of a set of idioms (cached).

        Per-idiom plans are merged into a shared prefix trie and each
        idiom gains a compile-time feasibility signature; see
        :mod:`repro.idl.forest`.
        """
        key = (tuple(names), memo)
        if key not in self._forest_cache:
            plans = {name: self.plan_for(name, memo=memo) for name in names}
            lowered = {name: self.compile(name, memo=memo) for name in names}
            self._forest_cache[key] = build_forest(names, plans, lowered)
        return self._forest_cache[key]

    def prepare(self, names: list[str] | None = None,
                memo: bool = True, forest: bool = False) -> None:
        """Eagerly compile lowered forms and plans (e.g. before fanning a
        detection session out across worker threads — workers then only
        read the caches). ``memo`` must match the configuration the
        solves will use, or the warm-up fills the wrong cache keys;
        ``forest`` additionally builds the cross-idiom plan forest."""
        resolved = [name for name in
                    (names if names is not None else self.names())
                    if self.registry.native(name) is None]
        for name in resolved:
            self.plan_for(name, memo=memo)
        if forest:
            self.forest_for(tuple(resolved), memo=memo)

    # -- solving ---------------------------------------------------------------------
    def match(self, function: Function, name: str,
              params: dict[str, int] | None = None,
              analyses: FunctionAnalyses | None = None,
              limits: SolveLimits | None = None,
              max_solutions: int | None = None,
              ordering: str = "plan",
              memo: bool = True,
              indexed: bool = True) -> list[dict]:
        """All matches of the named idiom within one function."""
        solutions, _ = self.match_with_stats(
            function, name, params, analyses, limits,
            max_solutions=max_solutions, ordering=ordering, memo=memo,
            indexed=indexed)
        return solutions

    def match_with_stats(self, function: Function, name: str,
                         params: dict[str, int] | None = None,
                         analyses: FunctionAnalyses | None = None,
                         limits: SolveLimits | None = None,
                         max_solutions: int | None = None,
                         ordering: str = "plan",
                         memo: bool = True,
                         indexed: bool = True
                         ) -> tuple[list[dict], SolverStats]:
        """Like :meth:`match`, also returning the solve's search stats."""
        if ordering == "forest":
            solutions, stats = self.match_library(
                function, [name], analyses=analyses, limits=limits,
                max_solutions=max_solutions, memo=memo, indexed=indexed)
            return solutions[name], stats
        if ordering not in ("plan", "dynamic"):
            raise IDLError(f"unknown ordering {ordering!r}")
        limits = (limits or SolveLimits()).with_overrides(max_solutions)
        if function.is_declaration():
            return [], SolverStats(max_steps=limits.max_steps)
        lowered = self.compile(name, params, memo)
        plan = self.plan_for(name, params, memo) \
            if ordering == "plan" else None
        solver = Solver(function, analyses, limits, indexed=indexed)
        return solver.solutions(lowered, plan), solver.stats

    def match_library(self, function: Function, names: list[str],
                      analyses: FunctionAnalyses | None = None,
                      limits: SolveLimits | None = None,
                      max_solutions: int | None = None,
                      memo: bool = True, indexed: bool = True
                      ) -> tuple[dict[str, list[dict]], SolverStats]:
        """All matches of several idioms in one fused forest pass.

        One solver walks the shared plan forest once per function;
        idioms whose feasibility signature rules the function out are
        skipped without solving (and counted in
        ``stats.feasibility_skips``). Per-idiom solution lists are
        identical — contents and order — to per-idiom ``ordering="plan"``
        solves. The step budget covers the whole pass, scaled by the
        number of feasible idioms: per-idiom mode grants ``max_steps``
        per solve, and the fused pass never uses more ticks than the sum
        of the solves it replaces, so any function that fit the per-idiom
        budgets fits this one.
        """
        limits = (limits or SolveLimits()).with_overrides(max_solutions)
        forest = self.forest_for(tuple(names), memo=memo)
        if function.is_declaration():
            return {name: [] for name in names}, \
                SolverStats(max_steps=limits.max_steps)
        solver = Solver(function, analyses, limits, indexed=indexed)
        feasible = forest.feasible(solver.context.analyses)
        solver.stats.feasibility_skips += len(names) - len(feasible)
        solver.stats.max_steps = limits.max_steps * max(1, len(feasible))
        solutions = execute_forest(solver, forest, feasible)
        for name in names:
            solutions.setdefault(name, [])
        return solutions, solver.stats

    def match_module(self, module: Module, name: str,
                     params: dict[str, int] | None = None,
                     analyses: dict[str, FunctionAnalyses] | None = None,
                     limits: SolveLimits | None = None) -> list[tuple]:
        """All matches across a module: list of (function, solution).

        ``analyses`` is an optional per-function-name cache; it is filled
        in as functions are visited, so callers running several idioms over
        one module (or interleaving with other analyses) share one
        :class:`FunctionAnalyses` per function instead of rebuilding
        dominator trees inside every ``match`` call.
        """
        if analyses is None:
            analyses = {}
        results = []
        for fname, function in module.functions.items():
            if function.is_declaration():
                continue
            fa = analyses.get(fname)
            if fa is None:
                fa = analyses[fname] = FunctionAnalyses(function)
            for solution in self.match(function, name, params, analyses=fa,
                                       limits=limits):
                results.append((function, solution))
        return results
