"""IDL compiler facade: source → registry → lowered constraints → solutions.

This is the user-facing entry point mirroring the paper's Figure 1 pipeline
(idiom description → constraint formula → solver)::

    from repro.idl import IdiomCompiler

    idl = IdiomCompiler()
    idl.load('''
    Constraint FactorizationOpportunity
    ( {sum} is add instruction and ... )
    End
    ''')
    for match in idl.match(function, "FactorizationOpportunity"):
        print(match["sum"], match["factor"])
"""

from __future__ import annotations

from ..analysis.info import FunctionAnalyses
from ..errors import IDLError
from ..ir.module import Function, Module
from .lowering import Lowerer, Registry
from .natives import standard_natives
from .parser import parse_idl
from .solver import Solver


class IdiomCompiler:
    """Holds a constraint registry and compiles/solves idiom descriptions."""

    def __init__(self, load_natives: bool = True):
        self.registry = Registry()
        self._lowered_cache: dict[tuple, object] = {}
        if load_natives:
            for native in standard_natives():
                self.registry.add_native(native)

    # -- registry -----------------------------------------------------------------
    def load(self, source: str, filename: str = "<idl>") -> list[str]:
        """Parse IDL source and register every specification in it."""
        specs = parse_idl(source, filename)
        for spec in specs:
            self.registry.add_spec(spec)
        self._lowered_cache.clear()
        return [spec.name for spec in specs]

    def names(self) -> list[str]:
        return self.registry.names()

    # -- compilation -----------------------------------------------------------------
    def compile(self, name: str, params: dict[str, int] | None = None):
        """Lower a named constraint to its solvable form (cached)."""
        key = (name, tuple(sorted((params or {}).items())))
        if key not in self._lowered_cache:
            lowerer = Lowerer(self.registry)
            self._lowered_cache[key] = lowerer.lower_spec(name, params)
        return self._lowered_cache[key]

    # -- solving ---------------------------------------------------------------------
    def match(self, function: Function, name: str,
              params: dict[str, int] | None = None,
              analyses: FunctionAnalyses | None = None,
              max_solutions: int = 10_000) -> list[dict]:
        """All matches of the named idiom within one function."""
        if function.is_declaration():
            return []
        lowered = self.compile(name, params)
        solver = Solver(function, analyses, max_solutions=max_solutions)
        return solver.solutions(lowered)

    def match_module(self, module: Module, name: str,
                     params: dict[str, int] | None = None) -> list[tuple]:
        """All matches across a module: list of (function, solution)."""
        results = []
        for function in module.functions.values():
            for solution in self.match(function, name, params):
                results.append((function, solution))
        return results
