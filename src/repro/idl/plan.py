"""Static execution plans for lowered constraints (paper §4.4).

The paper keeps idiom matching tractable because "variables are collected
and ordered to assist constraint solving" — the ordering is a *static*
property of the idiom, computed once at compile time. The seed solver
re-derived the cheapest-ready conjunct dynamically at every search step;
this module precomputes that choice.

The plan compiler simulates the solver's cost model over *name-membership*
environments: :func:`node_cost` depends only on which variables are bound,
never on their values, so replaying the greedy cheapest-first selection
against a simulated bound-set reproduces the dynamic order exactly — once
per idiom instead of once per node expansion. Conjunctions become ordered
step lists (checks first, then single-candidate generators, indexed
generators, scans); disjunctions and collects carry nested sub-plans
compiled against the variables bound at their scheduled position.

Where the simulation is optimistic (an ``or`` branch or an under-filled
``collect`` binds fewer names at runtime than assumed), the executor in
:mod:`.solver` detects the not-ready step and falls back to the dynamic
ordering for the remainder of that conjunction, preserving the seed's
``stuck_branches`` semantics bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import IDLError
from .atoms import COST_NOT_READY, atom_bindings, atom_cost
from .lowering import LAnd, LAtom, LCollect, LMemo, LNative, LOr

#: Cost rank for a ready collect (late: after its outer variables bind).
COST_COLLECT = 80

#: Disjunctions defer past plain generators: entering an Or-branch commits
#: to solving it as a unit, so it should start only after the surrounding
#: conjunction has bound the context variables the branch checks against.
COST_OR_DEFER = 25

#: Replaying a memoized sub-constraint's cached solutions is cheaper than
#: any opcode generator but dearer than unit candidates, so memo references
#: run first when nothing else pins the search.
COST_MEMO = 5

#: Placeholder value for simulated (plan-time) environments. ``#len:``
#: markers simulate as 1 so native cost functions see a bound family.
PLANNED = object()


def node_cost(node, env: dict, context=None) -> int:
    """Cost rank of executing any lowered node in ``env``.

    Shared by the dynamic solver (real environments) and the plan compiler
    (simulated environments) — both must rank identically for plans to
    reproduce the dynamic order.
    """
    if isinstance(node, LAtom):
        return atom_cost(node, env)
    if isinstance(node, LMemo):
        return COST_MEMO
    if isinstance(node, LAnd):
        if not node.children:
            return 0
        return min(node_cost(c, env, context) for c in node.children)
    if isinstance(node, LOr):
        if not node.children:
            return 0
        worst = max(node_cost(c, env, context) for c in node.children)
        if worst >= COST_NOT_READY:
            return COST_NOT_READY
        return min(worst + COST_OR_DEFER, COST_NOT_READY - 1)
    if isinstance(node, LNative):
        return node.impl.cost(env, node.args, context)
    if isinstance(node, LCollect):
        ready = all(v in env for v in node.free_vars())
        return COST_COLLECT if ready else COST_NOT_READY
    raise IDLError(f"unknown lowered node {type(node).__name__}")


def simulated_env(bound: frozenset) -> dict:
    """A fake environment whose membership equals ``bound``."""
    return {name: (1 if name.startswith("#len:") else PLANNED)
            for name in bound}


# ---------------------------------------------------------------------------
# Plan node classes
# ---------------------------------------------------------------------------

@dataclass
class Plan:
    """Base: a leaf step (atom, native or memo reference).

    ``cost`` is the static cost rank at the position the compiler scheduled
    this node; ``binds`` the names the simulation assumes newly bound after
    it solves.
    """

    node: object
    cost: int = 0
    binds: frozenset = frozenset()

    def describe(self, depth: int = 0) -> str:
        pad = "  " * depth
        return f"{pad}[{self.cost:4d}] {self.node!r}"


@dataclass
class AndPlan(Plan):
    """An ordered conjunction: execute ``steps`` left to right."""

    steps: list[Plan] = field(default_factory=list)

    def describe(self, depth: int = 0) -> str:
        pad = "  " * depth
        lines = [f"{pad}And({len(self.steps)} steps)"]
        lines += [s.describe(depth + 1) for s in self.steps]
        return "\n".join(lines)


@dataclass
class OrPlan(Plan):
    """A disjunction whose branches were each planned against the entry
    bound-set; ``binds`` is the intersection of the branch bindings (only
    names *every* branch guarantees)."""

    branches: list[Plan] = field(default_factory=list)

    def describe(self, depth: int = 0) -> str:
        pad = "  " * depth
        lines = [f"{pad}Or({len(self.branches)} branches)"]
        lines += [b.describe(depth + 1) for b in self.branches]
        return "\n".join(lines)


@dataclass
class CollectPlan(Plan):
    """A collect whose body sub-plan assumes the outer variables bound."""

    body: Plan | None = None

    def describe(self, depth: int = 0) -> str:
        pad = "  " * depth
        header = f"{pad}Collect({self.node.index} x{self.node.limit})"
        if self.body is None:
            return header
        return header + "\n" + self.body.describe(depth + 1)


# ---------------------------------------------------------------------------
# Plan compilation
# ---------------------------------------------------------------------------

def compile_plan(node, bound: frozenset = frozenset()) -> Plan:
    """Compile a lowered constraint into an execution plan.

    ``bound`` is the set of variable names assumed bound on entry. The
    result is cached per idiom by :class:`~repro.idl.compiler.IdiomCompiler`
    and shared by every solve.
    """
    if isinstance(node, LAnd):
        return _compile_and(node, bound)
    if isinstance(node, LOr):
        branches = [compile_plan(c, bound) for c in node.children]
        binds = frozenset()
        if branches:
            binds = frozenset.intersection(*[b.binds for b in branches])
        return OrPlan(node, 0, binds, branches)
    if isinstance(node, LCollect):
        body = compile_plan(node.instance,
                            bound | frozenset(node.free_vars()))
        return CollectPlan(node, COST_COLLECT,
                           _collect_bindings(node, bound), body)
    if isinstance(node, LMemo):
        if node.plan is None:
            node.plan = compile_plan(node.canonical, frozenset())
        binds = frozenset(v for v in node.mapping.values() if v not in bound)
        return Plan(node, COST_MEMO, binds)
    if isinstance(node, LAtom):
        return Plan(node, atom_cost(node, simulated_env(bound)),
                    atom_bindings(node, bound))
    if isinstance(node, LNative):
        return Plan(node, 0, node.impl.planned_bindings(node.args, bound))
    raise IDLError(f"cannot plan node {type(node).__name__}")


def _compile_and(node: LAnd, bound: frozenset) -> AndPlan:
    """Order a conjunction's children by replaying the solver's greedy
    cheapest-first selection over simulated bound-sets."""
    remaining = list(node.children)
    steps: list[Plan] = []
    current: set[str] = set(bound)
    while remaining:
        env = simulated_env(frozenset(current))
        best_index, best_cost = -1, COST_NOT_READY + 1
        for i, child in enumerate(remaining):
            cost = node_cost(child, env, None)
            if cost < best_cost:
                best_index, best_cost = i, cost
                if cost == 0:
                    break
        if best_cost >= COST_NOT_READY:
            # Statically stuck: no remaining conjunct can bind its inputs
            # under the simulation. Emit the rest in source order; the
            # executor's dynamic fallback (or the stuck-branch path)
            # resolves it with real bindings.
            for child in remaining:
                steps.append(compile_plan(child, frozenset(current)))
            break
        child = remaining.pop(best_index)
        sub = compile_plan(child, frozenset(current))
        sub.cost = best_cost
        steps.append(sub)
        current |= sub.binds
    return AndPlan(node, 0, frozenset(current) - bound, steps)


# ---------------------------------------------------------------------------
# Structural signatures (the plan forest's sharing key)
# ---------------------------------------------------------------------------

def _same_name(name: str) -> str:
    return name


def node_signature(node, rename=_same_name) -> tuple:
    """A hashable key capturing a lowered node's full structure.

    Two nodes with equal signatures are interchangeable for execution:
    same atom kinds, same flattened variable names, same memo mappings,
    same nested structure. The cross-idiom plan forest keys its prefix
    trie on these, so conjunct prefixes that several idioms lower
    identically (the ``For``/``ForNest`` building blocks) collapse into
    one shared node. ``rename`` maps every variable name into the key —
    identity by default; the forest's subquery cache passes a
    root-canonicalizer so renamed-but-isomorphic subqueries key equal.
    """
    if isinstance(node, LAtom):
        return ("atom", node.kind, tuple(rename(v) for v in node.vars),
                tuple(sorted(node.extra.items())),
                tuple(tuple(rename(v) for v in vl)
                      for vl in node.varlists))
    if isinstance(node, LAnd):
        return ("and",) + tuple(node_signature(c, rename)
                                for c in node.children)
    if isinstance(node, LOr):
        return ("or",) + tuple(node_signature(c, rename)
                               for c in node.children)
    if isinstance(node, LMemo):
        return ("memo", node.key,
                tuple(sorted((c, rename(v))
                             for c, v in node.mapping.items())))
    if isinstance(node, LNative):
        return ("native", node.name,
                tuple(sorted((a, rename(v))
                             for a, v in node.args.items())))
    if isinstance(node, LCollect):
        return ("collect", node.limit,
                node_signature(node.instance, rename),
                tuple(tuple(sorted((rename(a), rename(b))
                                   for a, b in m.items()))
                      for m in node.index_names))
    raise IDLError(f"cannot fingerprint node {type(node).__name__}")


def plan_signature(plan: Plan, rename=_same_name) -> tuple:
    """A hashable key capturing a compiled plan's structure *and* order.

    Signatures include the scheduled cost and assumed bindings alongside
    the recursive step/branch/body structure, so equal signatures imply
    the two plans execute the exact same search in the exact same order —
    the property that keeps forest-mode match sets bit-identical to the
    per-idiom executor. ``rename`` is threaded through as in
    :func:`node_signature`.
    """
    base: tuple = (type(plan).__name__, plan.cost,
                   tuple(sorted(rename(b) for b in plan.binds)),
                   node_signature(plan.node, rename))
    if isinstance(plan, AndPlan):
        return base + tuple(plan_signature(s, rename) for s in plan.steps)
    if isinstance(plan, OrPlan):
        return base + tuple(plan_signature(b, rename)
                            for b in plan.branches)
    if isinstance(plan, CollectPlan):
        return base + (None if plan.body is None
                       else plan_signature(plan.body, rename),)
    return base


def _collect_bindings(node: LCollect, bound: frozenset) -> frozenset:
    """Names a collect optimistically binds: every indexed variable of
    every instance, plus the ``#len`` family markers. At runtime fewer
    instances may be found; the executor's readiness check covers that."""
    names: set[str] = set(node.indexed_vars())
    for mapping in node.index_names:
        names.update(mapping.values())
    names.update(f"#len:{base}" for base in node.indexed_base_names())
    return frozenset(n for n in names if n not in bound)
