"""AST node definitions for IDL, mirroring the grammar of paper Figure 7."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from ..errors import IDLError


# ---------------------------------------------------------------------------
# Calculations: small integer expressions over parameters / indices
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Num:
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Sym:
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BinCalc:
    op: str  # '+' | '-'
    lhs: "Calculation"
    rhs: "Calculation"

    def __str__(self) -> str:
        return f"{self.lhs}{self.op}{self.rhs}"


Calculation = Union[Num, Sym, BinCalc]


def evaluate_calc(calc: Calculation, params: dict[str, int]) -> int:
    """Evaluate a calculation with integer parameter bindings."""
    if isinstance(calc, Num):
        return calc.value
    if isinstance(calc, Sym):
        if calc.name not in params:
            raise IDLError(f"unbound parameter {calc.name!r} in calculation")
        return params[calc.name]
    if isinstance(calc, BinCalc):
        lhs = evaluate_calc(calc.lhs, params)
        rhs = evaluate_calc(calc.rhs, params)
        return lhs + rhs if calc.op == "+" else lhs - rhs
    raise IDLError(f"bad calculation node {calc!r}")


# ---------------------------------------------------------------------------
# Variable references
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class VarComponent:
    """One dotted component, e.g. ``input[i]`` → name='input', index=Sym(i)."""

    name: str
    index: Calculation | None = None
    index_hi: Calculation | None = None  # for ranges: input[0..4]

    def __str__(self) -> str:
        if self.index is None:
            return self.name
        if self.index_hi is None:
            return f"{self.name}[{self.index}]"
        return f"{self.name}[{self.index}..{self.index_hi}]"


@dataclass(frozen=True)
class VarRef:
    """A braces-delimited variable reference ``{a.b[i].c}``."""

    components: tuple[VarComponent, ...]

    def __str__(self) -> str:
        return ".".join(str(c) for c in self.components)

    def is_range(self) -> bool:
        return any(c.index_hi is not None for c in self.components)


# ---------------------------------------------------------------------------
# Constraint nodes
# ---------------------------------------------------------------------------

@dataclass
class Atom:
    """An atomic constraint; ``kind`` selects the predicate, ``vars`` are the
    variable references in positional order, ``extra`` carries predicate
    details (opcode, argument position, negation flags...)."""

    kind: str
    vars: list[VarRef]
    extra: dict = field(default_factory=dict)
    varlists: list[list[VarRef]] = field(default_factory=list)


@dataclass
class Conjunction:
    children: list


@dataclass
class Disjunction:
    children: list


@dataclass
class Inheritance:
    name: str
    params: dict[str, Calculation] = field(default_factory=dict)
    # 'with {outer} as {inner}' pairs: maps inner name -> outer VarRef
    renames: list[tuple[VarRef, VarRef]] = field(default_factory=list)  # (outer, inner)
    base: VarRef | None = None  # 'at {base}' prefix for unmapped variables


@dataclass
class ForAll:
    constraint: object
    index: str
    lo: Calculation
    hi: Calculation


@dataclass
class ForSome:
    constraint: object
    index: str
    lo: Calculation
    hi: Calculation


@dataclass
class ForOne:
    constraint: object
    name: str
    value: Calculation


@dataclass
class If:
    lhs: Calculation
    rhs: Calculation
    then: object
    otherwise: object


@dataclass
class Rename:
    """'with {outer} as {inner}' applied to a non-inheritance grouping."""

    constraint: object
    renames: list[tuple[VarRef, VarRef]]
    base: VarRef | None = None


@dataclass
class Collect:
    index: str
    limit: int
    constraint: object


@dataclass
class Specification:
    """Top level: ``Constraint <name> ... End``."""

    name: str
    constraint: object
