"""Natively implemented IDL constraints: Concat and KernelFunction.

The paper's idiom library treats these as reusable building blocks
(Figures 11-14). Concat is pure bookkeeping over variable families;
KernelFunction is the "well behaved kernel" judgement — a backward-slice
purity check — which is graph algorithmic rather than relational, so both
are implemented in Python and registered alongside the IDL-defined
constraints (the analogue of the paper coupling IDL to compiler-internal
primitives).
"""

from __future__ import annotations

from typing import Iterator

from ..analysis.dataflow import data_operands
from ..ir.instructions import (
    BinaryOperator,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    SelectInst,
    StoreInst,
)
from ..ir.values import Argument, Constant, Value
from .atoms import COST_NOT_READY, SolveContext, values_equal
from .lowering import NativeConstraint

COST_CONCAT = 60
COST_KERNEL = 70


def family_length(env: dict, base: str) -> int | None:
    """Length of a bound family, or None if its collect has not run."""
    marker = env.get(f"#len:{base}")
    return marker if isinstance(marker, int) else None


def family_values(env: dict, base: str, length: int) -> list[Value]:
    return [env[f"{base}[{i}]"] for i in range(length)]


class ConcatConstraint(NativeConstraint):
    """``out = in1 ++ [in2]``: appends a single value to a family."""

    name = "Concat"
    arg_names = ("in1", "in2", "out")

    def cost(self, env: dict, args: dict[str, str],
             context: SolveContext) -> int:
        if family_length(env, args["in1"]) is None:
            return COST_NOT_READY
        if args["in2"] not in env:
            return COST_NOT_READY
        return COST_CONCAT

    def planned_bindings(self, args: dict[str, str],
                         bound: frozenset) -> frozenset:
        # Binds the output family; its length marker is what downstream
        # cost functions (KernelFunction's input check) test for.
        return frozenset({f"#len:{args['out']}"})

    def solve(self, env: dict, args: dict[str, str],
              context: SolveContext) -> Iterator[dict]:
        length = family_length(env, args["in1"])
        if length is None or args["in2"] not in env:
            return
        out = args["out"]
        values = family_values(env, args["in1"], length) + [env[args["in2"]]]
        new_env = dict(env)
        for i, value in enumerate(values):
            key = f"{out}[{i}]"
            if key in env and not values_equal(env[key], value):
                return
            new_env[key] = value
        new_env[f"#len:{out}"] = len(values)
        yield new_env


class KernelFunctionConstraint(NativeConstraint):
    """The paper's "well behaved kernel function" judgement.

    Given a loop region (``outer`` = first instruction of the loop header,
    ``inner`` = first instruction of the loop body) and declared ``input``
    values, checks that ``output`` is computed by a pure data-flow slice:

    * slice instructions are arithmetic/casts/selects/comparisons or pure
      intrinsic calls — no loads, stores or impure calls (any memory read
      must be one of the declared inputs);
    * phis are allowed only for control flow *inside* the body (conditional
      kernels); loop-header phis must be declared inputs;
    * conditions of all conditional branches inside the body join the slice
      (the "well behaved condition" guarantee for conditional histograms).
    """

    name = "KernelFunction"
    arg_names = ("input", "output", "outer", "inner")
    #: May the kernel read loop induction variables implicitly? True for
    #: reduction/stencil value kernels (a parallel mapping knows its own
    #: index); False for histogram *index* kernels, where an
    #: induction-derived index means the access is injective — a plain
    #: parallel update, not a histogram (see DataKernelFunction).
    allow_induction = True

    def cost(self, env: dict, args: dict[str, str],
             context: SolveContext) -> int:
        if family_length(env, args["input"]) is None:
            return COST_NOT_READY
        for key in ("output", "outer", "inner"):
            if args[key] not in env:
                return COST_NOT_READY
        return COST_KERNEL

    def solve(self, env: dict, args: dict[str, str],
              context: SolveContext) -> Iterator[dict]:
        length = family_length(env, args["input"])
        if length is None:
            return
        inputs = family_values(env, args["input"], length)
        output = env.get(args["output"])
        outer = env.get(args["outer"])
        inner = env.get(args["inner"])
        if output is None or not isinstance(outer, Instruction) or \
                not isinstance(inner, Instruction):
            return
        if self.kernel_is_well_behaved(context, inputs, output, outer, inner,
                                       self.allow_induction):
            yield env

    # -- the slice check (also used by the transformer) ------------------------
    @staticmethod
    def kernel_is_well_behaved(context: SolveContext, inputs: list[Value],
                               output: Value, outer: Instruction,
                               inner: Instruction,
                               allow_induction: bool = True) -> bool:
        dom = context.analyses.dom
        input_ids = {id(v) for v in inputs}

        roots: list[Value] = [output]
        # Conditions guarding anything in the body must be kernel-pure too.
        for branch in context.by_opcode.get("br", ()):
            if isinstance(branch, BranchInst) and branch.is_conditional() \
                    and dom.dominates(inner, branch):
                roots.append(branch.condition)

        seen: set[int] = set()
        stack = list(roots)
        while stack:
            value = stack.pop()
            if id(value) in seen or id(value) in input_ids:
                continue
            seen.add(id(value))
            if isinstance(value, (Constant, Argument)):
                continue
            if not isinstance(value, Instruction):
                return False
            if not dom.dominates(outer, value):
                continue  # loop invariant: an implicit kernel parameter
            if isinstance(value, PhiInst):
                if dom.dominates(inner, value):
                    if not allow_induction and \
                            _is_canonical_induction(value):
                        # A nested loop's iterator: induction-derived after
                        # all, so a data-only kernel must reject it.
                        return False
                    # Body phi: conditional kernel control flow — allowed.
                    stack.extend(data_operands(value))
                    continue
                if allow_induction and _is_canonical_induction(value):
                    # Loop iterators are implicitly kernel-computable
                    # (a parallel mapping knows its own index).
                    continue
                # Other header phis (accumulators) must be declared inputs.
                return False
            if isinstance(value, CallInst):
                if not value.is_pure():
                    return False
                stack.extend(value.operands)
                continue
            if isinstance(value, (BinaryOperator, CastInst, SelectInst,
                                  ICmpInst, FCmpInst)):
                stack.extend(value.operands)
                continue
            if isinstance(value, (LoadInst, StoreInst, GEPInst)):
                return False  # memory traffic must be declared as inputs
            return False  # branches, allocas, rets... are never kernel code
        return True


class DataKernelFunctionConstraint(KernelFunctionConstraint):
    """KernelFunction whose output must derive from *data*, not inductions.

    Used for the histogram index kernel: if the bin index is a function of
    induction variables alone, accesses are injective and the loop is an
    ordinary parallel update — not a histogram reduction.
    """

    name = "DataKernelFunction"
    allow_induction = False


def _is_canonical_induction(phi: PhiInst) -> bool:
    """A phi incremented by an add of itself with an invariant step.

    The step must be a constant/argument or an instruction that dominates
    the phi — excluding interdependent accumulators (``b += a`` where ``a``
    itself varies per iteration), which are not implicitly computable.
    """
    for value, _ in phi.incoming:
        if isinstance(value, BinaryOperator) and value.opcode == "add":
            step = None
            if value.lhs is phi:
                step = value.rhs
            elif value.rhs is phi:
                step = value.lhs
            if step is None:
                continue
            if isinstance(step, (Constant, Argument)):
                return True
            if isinstance(step, Instruction) and step.parent is not None \
                    and phi.parent is not None:
                from ..analysis.dominators import DominatorTree

                tree = DominatorTree.block_level(phi.parent.parent)
                if tree.dominates(step.parent, phi.parent) and \
                        step.parent is not phi.parent:
                    return True
    return False


def standard_natives() -> list[NativeConstraint]:
    return [ConcatConstraint(), KernelFunctionConstraint(),
            DataKernelFunctionConstraint()]
