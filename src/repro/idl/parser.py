"""Recursive-descent parser for IDL (grammar: paper Figure 7).

Extensions over the paper's BNF, documented in DESIGN.md:

* the opcode list includes ``phi``, ``fcmp``, ``sdiv``, ``srem``, ``sext``,
  ``zext``, ``sitofp``, ``trunc`` and ``call`` (the paper's list is
  abridged "to reduce the size of the language" but its own Figure 5 binds
  variables to ``sext`` results);
* ``is integer constant one`` complements ``constant zero`` (needed by
  ReadRange's ``rowstr[j+1]`` bound);
* ``post dominates`` forms appear in the grammar (used by the paper's own
  Figure 9 SESE definition but missing from its BNF);
* ``collect`` takes an optional solution limit (defaults to 16).
"""

from __future__ import annotations

import re

from ..errors import ParseError
from .ast import (
    Atom,
    BinCalc,
    Calculation,
    Collect,
    Conjunction,
    Disjunction,
    ForAll,
    ForOne,
    ForSome,
    If,
    Inheritance,
    Num,
    Rename,
    Specification,
    Sym,
    VarComponent,
    VarRef,
)
from .lexer import Token, tokenize

#: IDL opcode word -> IR opcode.
OPCODE_WORDS = {
    "store": "store", "load": "load", "return": "ret", "branch": "br",
    "add": "add", "sub": "sub", "mul": "mul", "sdiv": "sdiv", "srem": "srem",
    "fadd": "fadd", "fsub": "fsub", "fmul": "fmul", "fdiv": "fdiv",
    "select": "select", "gep": "gep", "icmp": "icmp", "fcmp": "fcmp",
    "phi": "phi", "sext": "sext", "zext": "zext", "sitofp": "sitofp",
    "trunc": "trunc", "call": "call", "alloca": "alloca",
}

_ARG_POSITIONS = {"first": 0, "second": 1, "third": 2, "fourth": 3}

_CALC_TOKEN_RE = re.compile(r"\s*([A-Za-z_]\w*|\d+|[+\-])")


def parse_calc_text(text: str) -> Calculation:
    """Parse a calculation from raw text (used inside variable brackets)."""
    tokens = _CALC_TOKEN_RE.findall(text)
    if "".join(tokens).replace(" ", "") != text.replace(" ", ""):
        raise ParseError(f"malformed calculation {text!r}")
    if not tokens:
        raise ParseError("empty calculation")
    pos = 0

    def term() -> Calculation:
        nonlocal pos
        tok = tokens[pos]
        pos += 1
        if tok.isdigit():
            return Num(int(tok))
        if tok in "+-":
            raise ParseError(f"unexpected {tok!r} in calculation {text!r}")
        return Sym(tok)

    calc = term()
    while pos < len(tokens):
        op = tokens[pos]
        if op not in "+-":
            raise ParseError(f"expected + or - in calculation {text!r}")
        pos += 1
        calc = BinCalc(op, calc, term())
    return calc


def parse_var_text(text: str) -> VarRef:
    """Parse the inside of a ``{...}`` reference into a VarRef."""
    components: list[VarComponent] = []
    for part in _split_dots(text):
        match = re.fullmatch(r"([A-Za-z_#]\w*)(?:\[([^\[\]]*)\])?", part.strip())
        if not match:
            raise ParseError(f"malformed variable component {part!r}")
        name, idx_text = match.group(1), match.group(2)
        if idx_text is None:
            components.append(VarComponent(name))
        elif ".." in idx_text:
            lo, hi = idx_text.split("..", 1)
            components.append(VarComponent(
                name, parse_calc_text(lo), parse_calc_text(hi)))
        else:
            components.append(VarComponent(name, parse_calc_text(idx_text)))
    if not components:
        raise ParseError(f"empty variable reference {text!r}")
    return VarRef(tuple(components))


def parse_varlist_text(text: str) -> list[VarRef]:
    """Parse a ``{a, b[0..3], c}`` variable list."""
    return [parse_var_text(part) for part in text.split(",") if part.strip()]


def _split_dots(text: str) -> list[str]:
    """Split on dots outside brackets."""
    parts, depth, current = [], 0, []
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "." and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return parts


class IDLParser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- plumbing ---------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.current
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def accept_word(self, word: str) -> bool:
        if self.current.kind == "word" and self.current.text == word:
            self.advance()
            return True
        return False

    def expect_word(self, word: str) -> None:
        if not self.accept_word(word):
            raise ParseError(f"expected {word!r}, got {self.current.text!r}",
                             self.current.location)

    def expect_words(self, *words: str) -> None:
        for word in words:
            self.expect_word(word)

    def expect_punct(self, punct: str) -> None:
        if self.current.kind == "punct" and self.current.text == punct:
            self.advance()
            return
        raise ParseError(f"expected {punct!r}, got {self.current.text!r}",
                         self.current.location)

    def accept_punct(self, punct: str) -> bool:
        if self.current.kind == "punct" and self.current.text == punct:
            self.advance()
            return True
        return False

    def expect_var(self) -> VarRef:
        if self.current.kind != "var":
            raise ParseError(
                f"expected variable reference, got {self.current.text!r}",
                self.current.location)
        return parse_var_text(self.advance().text)

    def expect_varlist(self) -> list[VarRef]:
        if self.current.kind != "var":
            raise ParseError(
                f"expected variable list, got {self.current.text!r}",
                self.current.location)
        return parse_varlist_text(self.advance().text)

    def expect_name(self) -> str:
        if self.current.kind != "word":
            raise ParseError(f"expected name, got {self.current.text!r}",
                             self.current.location)
        return self.advance().text

    def parse_calc(self) -> Calculation:
        tok = self.current
        if tok.kind == "number":
            self.advance()
            calc: Calculation = Num(int(tok.text))
        elif tok.kind == "word":
            self.advance()
            calc = Sym(tok.text)
        else:
            raise ParseError(f"expected calculation, got {tok.text!r}",
                             tok.location)
        while self.current.kind == "punct" and self.current.text in "+-":
            op = self.advance().text
            nxt = self.current
            if nxt.kind == "number":
                self.advance()
                rhs: Calculation = Num(int(nxt.text))
            elif nxt.kind == "word":
                self.advance()
                rhs = Sym(nxt.text)
            else:
                raise ParseError("expected symbol or number after "
                                 f"{op!r}", nxt.location)
            calc = BinCalc(op, calc, rhs)
        return calc

    # -- top level -----------------------------------------------------------------
    def parse_program(self) -> list[Specification]:
        specs: list[Specification] = []
        while self.current.kind != "eof":
            self.expect_word("Constraint")
            name = self.expect_name()
            constraint = self.parse_constraint()
            self.expect_word("End")
            specs.append(Specification(name, constraint))
        return specs

    # -- constraints ------------------------------------------------------------------
    def parse_constraint(self):
        node = self.parse_primary()
        node = self.parse_suffixes(node)
        return node

    def parse_suffixes(self, node):
        """Postfix quantifiers (for all / for some / for) and with/at."""
        while True:
            if self.current.kind == "word" and self.current.text == "for":
                self.advance()
                if self.accept_word("all"):
                    index = self.expect_name()
                    self.expect_punct("=")
                    lo = self.parse_calc()
                    self.expect_punct("..")
                    hi = self.parse_calc()
                    node = ForAll(node, index, lo, hi)
                elif self.accept_word("some"):
                    index = self.expect_name()
                    self.expect_punct("=")
                    lo = self.parse_calc()
                    self.expect_punct("..")
                    hi = self.parse_calc()
                    node = ForSome(node, index, lo, hi)
                else:
                    name = self.expect_name()
                    self.expect_punct("=")
                    node = ForOne(node, name, self.parse_calc())
                continue
            if self.current.kind == "word" and self.current.text in ("with", "at"):
                renames, base = self.parse_with_at()
                if isinstance(node, Inheritance) and not node.renames and \
                        node.base is None:
                    node.renames = renames
                    node.base = base
                else:
                    node = Rename(node, renames, base)
                continue
            return node

    def parse_with_at(self):
        """Parse ``with {outer} as {inner} and ... at {base}``."""
        renames: list[tuple[VarRef, VarRef]] = []
        base: VarRef | None = None
        if self.accept_word("with"):
            while True:
                outer = self.expect_var()
                self.expect_word("as")
                inner = self.expect_var()
                renames.append((outer, inner))
                # 'and {v} as' continues the with-list; anything else ends it.
                if self.current.kind == "word" and self.current.text == "and" \
                        and self.peek().kind == "var" \
                        and self.peek(2).kind == "word" \
                        and self.peek(2).text == "as":
                    self.advance()
                    continue
                break
        if self.accept_word("at"):
            base = self.expect_var()
        return renames, base

    def parse_primary(self):
        tok = self.current
        if tok.kind == "punct" and tok.text == "(":
            return self.parse_grouping()
        if tok.kind == "word":
            if tok.text == "inherits":
                return self.parse_inheritance()
            if tok.text == "collect":
                return self.parse_collect()
            if tok.text == "if":
                return self.parse_if()
            if tok.text == "all":
                return self.parse_all_atom()
        if tok.kind == "var":
            return self.parse_var_atom()
        raise ParseError(f"unexpected token {tok.text!r} in constraint",
                         tok.location)

    def parse_grouping(self):
        self.expect_punct("(")
        first = self.parse_constraint()
        if self.accept_punct(")"):
            return first
        children = [first]
        if self.current.kind == "word" and self.current.text == "and":
            while self.accept_word("and"):
                children.append(self.parse_constraint())
            self.expect_punct(")")
            return Conjunction(children)
        if self.current.kind == "word" and self.current.text == "or":
            while self.accept_word("or"):
                children.append(self.parse_constraint())
            self.expect_punct(")")
            return Disjunction(children)
        raise ParseError(f"expected 'and', 'or' or ')', got "
                         f"{self.current.text!r}", self.current.location)

    def parse_inheritance(self) -> Inheritance:
        self.expect_word("inherits")
        name = self.expect_name()
        params: dict[str, Calculation] = {}
        if self.accept_punct("("):
            while True:
                pname = self.expect_name()
                self.expect_punct("=")
                params[pname] = self.parse_calc()
                if not self.accept_punct(","):
                    break
            self.expect_punct(")")
        return Inheritance(name, params)

    def parse_collect(self) -> Collect:
        self.expect_word("collect")
        index = self.expect_name()
        limit = 16
        if self.current.kind == "number":
            limit = int(self.advance().text)
        constraint = self.parse_constraint()
        return Collect(index, limit, constraint)

    def parse_if(self) -> If:
        self.expect_word("if")
        lhs = self.parse_calc()
        self.expect_punct("=")
        rhs = self.parse_calc()
        self.expect_word("then")
        then = self.parse_constraint()
        self.expect_word("else")
        otherwise = self.parse_constraint()
        self.expect_word("endif")
        return If(lhs, rhs, then, otherwise)

    # -- atomic constraints ---------------------------------------------------------
    def parse_all_atom(self) -> Atom:
        self.expect_word("all")
        flow: str | None = None
        if self.accept_word("data"):
            flow = "data"
        elif self.accept_word("control"):
            flow = "control"
        self.expect_word("flow")
        self.expect_word("from")
        if self.current.kind != "var":
            raise ParseError("expected variable after 'from'",
                             self.current.location)
        source_list = self.expect_varlist()
        self.expect_word("to")
        sink_list = self.expect_varlist()
        if self.current.kind == "word" and self.current.text == "passes":
            self.expect_words("passes", "through")
            via = self.expect_var()
            if len(source_list) != 1 or len(sink_list) != 1:
                raise ParseError("'passes through' takes single variables")
            return Atom("passes_through", [source_list[0], sink_list[0], via],
                        {"flow": flow})
        self.expect_words("is", "killed", "by")
        kills = self.expect_varlist()
        if flow is not None:
            raise ParseError("'is killed by' uses combined flow only")
        return Atom("killed", [], {}, [source_list, sink_list, kills])

    def parse_var_atom(self) -> Atom:
        var = self.expect_var()
        tok = self.current
        if tok.kind != "word":
            raise ParseError(f"expected predicate after variable, got "
                             f"{tok.text!r}", tok.location)
        if tok.text == "is":
            return self.parse_is_atom(var)
        if tok.text == "has":
            return self.parse_has_atom(var)
        if tok.text == "reaches":
            self.advance()
            self.expect_words("phi", "node")
            phi = self.expect_var()
            self.expect_word("from")
            branch = self.expect_var()
            return Atom("reaches_phi", [var, phi, branch])
        return self.parse_dominates_atom(var)

    def parse_is_atom(self, var: VarRef) -> Atom:
        self.expect_word("is")
        tok = self.current
        if tok.text == "not":
            self.advance()
            self.expect_words("the", "same", "as")
            other = self.expect_var()
            return Atom("same", [var, other], {"negated": True})
        if tok.text == "the":
            self.advance()
            self.expect_words("same", "as")
            other = self.expect_var()
            return Atom("same", [var, other], {"negated": False})
        if tok.text in _ARG_POSITIONS:
            position = _ARG_POSITIONS[tok.text]
            self.advance()
            self.expect_words("argument", "of")
            other = self.expect_var()
            return Atom("argument_of", [var, other], {"position": position})
        if tok.text in ("integer", "float", "pointer"):
            self.advance()
            const: str | None = None
            if self.accept_word("constant"):
                if self.accept_word("zero"):
                    const = "zero"
                elif self.accept_word("one"):
                    const = "one"
                else:
                    raise ParseError("expected 'zero' or 'one'",
                                     self.current.location)
            return Atom("type", [var], {"type": tok.text, "const": const})
        if tok.text == "unused":
            self.advance()
            return Atom("class", [var], {"cls": "unused"})
        if tok.text in ("a", "an"):
            self.advance()
            word = self.expect_name()
            if word == "constant":
                return Atom("class", [var], {"cls": "constant"})
            if word == "compile":
                self.expect_words("time", "value")
                return Atom("class", [var], {"cls": "compile_time"})
            if word == "argument":
                return Atom("class", [var], {"cls": "argument"})
            if word == "instruction":
                return Atom("class", [var], {"cls": "instruction"})
            raise ParseError(f"unknown classification {word!r}", tok.location)
        if tok.text in OPCODE_WORDS:
            self.advance()
            self.expect_word("instruction")
            return Atom("opcode", [var], {"opcode": OPCODE_WORDS[tok.text]})
        raise ParseError(f"unknown 'is' predicate {tok.text!r}", tok.location)

    def parse_has_atom(self, var: VarRef) -> Atom:
        self.expect_word("has")
        tok = self.current
        if tok.text == "data":
            self.advance()
            self.expect_words("flow", "to")
            return Atom("edge", [var, self.expect_var()], {"edge": "data"})
        if tok.text == "control":
            self.advance()
            if self.accept_word("flow"):
                self.expect_word("to")
                return Atom("edge", [var, self.expect_var()],
                            {"edge": "control"})
            self.expect_words("dominance", "to")
            return Atom("edge", [var, self.expect_var()],
                        {"edge": "control_dominance"})
        if tok.text == "dependence":
            self.advance()
            self.expect_words("edge", "to")
            return Atom("edge", [var, self.expect_var()],
                        {"edge": "dependence"})
        raise ParseError(f"unknown 'has' predicate {tok.text!r}", tok.location)

    def parse_dominates_atom(self, var: VarRef) -> Atom:
        negated = False
        strict = False
        flow = "control"
        post = False
        if self.accept_word("does"):
            self.expect_word("not")
            negated = True
        if self.accept_word("strictly"):
            strict = True
        if self.accept_word("data"):
            self.expect_word("flow")
            flow = "data"
        elif self.accept_word("control"):
            self.expect_word("flow")
            flow = "control"
        if self.accept_word("post"):
            post = True
        if not (self.accept_word("dominates") or self.accept_word("dominate")):
            raise ParseError(f"expected 'dominates', got "
                             f"{self.current.text!r}", self.current.location)
        other = self.expect_var()
        return Atom("dominates", [var, other],
                    {"negated": negated, "strict": strict, "flow": flow,
                     "post": post})


def parse_idl(source: str, filename: str = "<idl>") -> list[Specification]:
    """Parse IDL source text into specifications."""
    return IDLParser(tokenize(source, filename)).parse_program()
