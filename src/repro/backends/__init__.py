"""Heterogeneous API backends: simulated vendor libraries and mini-DSLs,
discoverable through the pluggable :mod:`~repro.backends.registry`."""

from . import blas, fft, halide, lift, parallel_cpu, sparse
from .api import (
    API_DESCRIPTORS,
    ApiCallSite,
    ApiDescriptor,
    ApiRuntime,
    FrozenMap,
    apis_for,
)
from .registry import (
    BackendEntry,
    BackendRegistry,
    LoweringContract,
    default_registry,
)

__all__ = [
    "blas", "fft", "halide", "lift", "parallel_cpu", "sparse",
    "API_DESCRIPTORS", "ApiCallSite", "ApiDescriptor", "ApiRuntime",
    "FrozenMap", "apis_for",
    "BackendEntry", "BackendRegistry", "LoweringContract",
    "default_registry",
]
