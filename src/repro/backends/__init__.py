"""Heterogeneous API backends: simulated vendor libraries and mini-DSLs."""

from . import blas, halide, lift, sparse
from .api import (
    API_DESCRIPTORS,
    ApiCallSite,
    ApiDescriptor,
    ApiRuntime,
    apis_for,
)

__all__ = [
    "blas", "halide", "lift", "sparse",
    "API_DESCRIPTORS", "ApiCallSite", "ApiDescriptor", "ApiRuntime",
    "apis_for",
]
