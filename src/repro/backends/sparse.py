"""Sparse linear algebra kernels backing cuSPARSE / clSPARSE / libSPMV.

CSR matrix-vector multiply implemented with an exact segmented-sum
(cumulative-sum differencing), which is robust to empty rows — unlike
``np.add.reduceat`` — and validated against scipy in the test suite.
"""

from __future__ import annotations

import numpy as np


def csr_spmv(row_ptr: np.ndarray, col_idx: np.ndarray, values: np.ndarray,
             x: np.ndarray, y: np.ndarray | None = None) -> np.ndarray:
    """y[i] = Σ_{k ∈ [row_ptr[i], row_ptr[i+1])} values[k] * x[col_idx[k]]."""
    rows = len(row_ptr) - 1
    nnz = int(row_ptr[-1])
    products = values[:nnz] * x[col_idx[:nnz]]
    prefix = np.concatenate(([0.0], np.cumsum(products)))
    result = prefix[row_ptr[1:]] - prefix[row_ptr[:-1]]
    if y is not None:
        y[:rows] = result
        return y
    return result


def csr_from_dense(dense: np.ndarray):
    """(row_ptr, col_idx, values) of a dense matrix (test helper)."""
    rows, cols = dense.shape
    row_ptr = [0]
    col_idx: list[int] = []
    values: list[float] = []
    for i in range(rows):
        for j in range(cols):
            if dense[i, j] != 0.0:
                col_idx.append(j)
                values.append(float(dense[i, j]))
        row_ptr.append(len(values))
    return (np.asarray(row_ptr, dtype=np.int32),
            np.asarray(col_idx, dtype=np.int32),
            np.asarray(values, dtype=np.float64))


def register_backend(registry) -> None:
    """Register the sparse backend: three SPMV library descriptors behind
    one CSR lowering contract."""
    from .api import CLSPARSE, CUSPARSE, LIBSPMV
    from .registry import BackendEntry, LoweringContract

    contract = LoweringContract(
        backend="sparse", category="sparse_matrix_op",
        requires=("iter_begin", "iter_end", "ranges.lo_address",
                  "idx_read.address", "seq_read.address",
                  "indir_read.address", "output.address"),
        kernels={"spmv": csr_spmv},
        emits="y[lo:hi] = CSR(row_ptr, col, val) · x via segmented sum")
    registry.register(BackendEntry(
        name="sparse", title="Sparse matrix libraries",
        descriptors=(CUSPARSE, CLSPARSE, LIBSPMV),
        contracts={"sparse_matrix_op": contract}))


def random_csr(rows: int, cols: int, nnz_per_row: int, seed: int = 7):
    """A reproducible random CSR matrix (CG/spmv workload inputs)."""
    rng = np.random.default_rng(seed)
    row_ptr = np.zeros(rows + 1, dtype=np.int32)
    col_idx = np.zeros(rows * nnz_per_row, dtype=np.int32)
    values = np.zeros(rows * nnz_per_row, dtype=np.float64)
    pos = 0
    for i in range(rows):
        cols_i = np.sort(rng.choice(cols, size=min(nnz_per_row, cols),
                                    replace=False))
        for j in cols_i:
            col_idx[pos] = j
            values[pos] = rng.uniform(-1.0, 1.0)
            pos += 1
        row_ptr[i + 1] = pos
    return row_ptr, col_idx[:pos], values[:pos]
