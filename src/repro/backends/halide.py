"""A miniature Halide: pure functional image pipelines with schedules.

Models the slice of Halide the paper targets (§5.2): a ``Func`` maps
integer variables to an expression over (possibly shifted) reads of input
buffers; a ``Schedule`` carries the optimisation directives whose effect
in this reproduction is a cost-model factor (vectorised CPU code is why
"Halide achieves good performance ... due to its more advanced
vectorization capabilities"). ``realize`` evaluates the pipeline exactly,
with numpy array semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import BackendError


class HExpr:
    """Base class of Halide expressions."""

    def __add__(self, other):
        return HBin("+", self, wrap(other))

    def __radd__(self, other):
        return HBin("+", wrap(other), self)

    def __sub__(self, other):
        return HBin("-", self, wrap(other))

    def __rsub__(self, other):
        return HBin("-", wrap(other), self)

    def __mul__(self, other):
        return HBin("*", self, wrap(other))

    def __rmul__(self, other):
        return HBin("*", wrap(other), self)

    def __truediv__(self, other):
        return HBin("/", self, wrap(other))


@dataclass(frozen=True)
class HConst(HExpr):
    value: float


@dataclass(frozen=True)
class Var(HExpr):
    name: str


@dataclass(frozen=True)
class HBin(HExpr):
    op: str
    lhs: HExpr
    rhs: HExpr


@dataclass(frozen=True)
class HCall(HExpr):
    name: str
    args: tuple


@dataclass(frozen=True)
class BufferRef(HExpr):
    """``input[x + dx, y + dy, ...]`` — a shifted read of a named buffer."""

    buffer: str
    shifts: tuple  # per-dimension integer offsets


def wrap(value) -> HExpr:
    if isinstance(value, HExpr):
        return value
    return HConst(float(value))


def sqrt(expr) -> HExpr:
    return HCall("sqrt", (wrap(expr),))


@dataclass
class Schedule:
    """Scheduling directives (affect the cost model, not semantics)."""

    parallel: list[str] = field(default_factory=list)
    vectorize: tuple[str, int] | None = None
    tile: tuple | None = None

    def speedup_factor(self, cores: int) -> float:
        factor = 1.0
        if self.parallel:
            factor *= cores
        if self.vectorize is not None:
            factor *= min(4.0, self.vectorize[1] / 2)
        return factor


class Func:
    """A Halide stage: ``f[x, y] = expr``."""

    def __init__(self, name: str, variables: list[Var], expr: HExpr):
        self.name = name
        self.variables = variables
        self.expr = expr
        self.schedule = Schedule()

    # -- scheduling API (chainable, Halide style) ------------------------------
    def parallel(self, var: Var) -> "Func":
        self.schedule.parallel.append(var.name)
        return self

    def vectorize(self, var: Var, width: int) -> "Func":
        self.schedule.vectorize = (var.name, width)
        return self

    # -- compilation -------------------------------------------------------------
    def realize(self, extents: list[tuple[int, int]],
                inputs: dict[str, np.ndarray]) -> np.ndarray:
        """Evaluate over the half-open index box ``extents`` per variable."""
        if len(extents) != len(self.variables):
            raise BackendError("extent/variable arity mismatch")
        sizes = [hi - lo for lo, hi in extents]
        result = _evaluate(self.expr, extents, inputs)
        return np.broadcast_to(result, tuple(sizes)).copy()

    def __repr__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"<halide.Func {self.name}[{names}]>"


def _evaluate(expr: HExpr, extents, inputs):
    if isinstance(expr, HConst):
        return expr.value
    if isinstance(expr, HBin):
        lhs = _evaluate(expr.lhs, extents, inputs)
        rhs = _evaluate(expr.rhs, extents, inputs)
        return {"+": np.add, "-": np.subtract, "*": np.multiply,
                "/": np.divide}[expr.op](lhs, rhs)
    if isinstance(expr, HCall):
        args = [_evaluate(a, extents, inputs) for a in expr.args]
        return {"sqrt": np.sqrt, "exp": np.exp, "log": np.log,
                "fabs": np.abs, "pow": np.power,
                "fmax": np.maximum, "fmin": np.minimum}[expr.name](*args)
    if isinstance(expr, BufferRef):
        array = inputs.get(expr.buffer)
        if array is None:
            raise BackendError(f"unbound input buffer {expr.buffer!r}")
        slices = tuple(slice(lo + s, hi + s)
                       for (lo, hi), s in zip(extents, expr.shifts))
        return array[slices]
    if isinstance(expr, Var):
        raise BackendError(
            "free index variables outside BufferRef are not supported")
    raise BackendError(f"cannot evaluate Halide node {expr!r}")


# ---------------------------------------------------------------------------
# Translation from detected stencils (paper §6.2)
# ---------------------------------------------------------------------------

def stencil_to_halide(kernel_expr, read_offsets: list[tuple],
                      captures: list[float], name: str = "stencil") -> Func:
    """Build a Halide Func from an extracted stencil kernel.

    ``kernel_expr`` is a :mod:`repro.transform.kernels` tree whose params
    refer to reads with the given per-dimension offsets.
    """
    from ..transform.kernels import KBin, KCall, KCapture, KCast, KCmp, \
        KConst, KParam, KSelect

    dims = len(read_offsets[0]) if read_offsets else 1
    variables = [Var(n) for n in ("x", "y", "z")[:dims]]

    def convert(expr) -> HExpr:
        if isinstance(expr, KConst):
            return HConst(float(expr.value))
        if isinstance(expr, KParam):
            return BufferRef("input", tuple(read_offsets[expr.index]))
        if isinstance(expr, KCapture):
            return HConst(float(captures[expr.index]))
        if isinstance(expr, KBin):
            op = {"fadd": "+", "add": "+", "fsub": "-", "sub": "-",
                  "fmul": "*", "mul": "*", "fdiv": "/"}.get(expr.op)
            if op is None:
                raise BackendError(
                    f"stencil kernel op {expr.op} not expressible in Halide")
            return HBin(op, convert(expr.lhs), convert(expr.rhs))
        if isinstance(expr, KCall):
            return HCall(expr.name, tuple(convert(a) for a in expr.args))
        if isinstance(expr, KCast):
            return convert(expr.operand)
        if isinstance(expr, (KSelect, KCmp)):
            raise BackendError(
                "stencils with control flow are not expressible in Halide")
        raise BackendError(f"cannot translate kernel node {expr!r}")

    func = Func(name, variables, convert(kernel_expr))
    # Default schedule, as generated by the paper's translator: parallel
    # outermost, vectorised innermost.
    func.parallel(variables[0])
    func.vectorize(variables[-1], 8)
    return func


def register_backend(registry) -> None:
    """Register the Halide backend: a stencil lowering contract whose
    handler evaluates the shared kernel expression (bit-identical to the
    sequential loop), with the pipeline translator exposed for the DSL
    code path (``stencil_to_dsl`` example, C backend)."""
    from ..transform.kernels import evaluate
    from .api import HALIDE
    from .registry import BackendEntry, LoweringContract

    contract = LoweringContract(
        backend="halide", category="stencil",
        requires=("kernel.output",),
        kernels={"evaluate": evaluate, "pipeline": stencil_to_halide},
        emits="shifted-slice kernel evaluation over the index box")
    registry.register(BackendEntry(
        name="halide", title="Halide image-pipeline DSL",
        descriptors=(HALIDE,),
        contracts={"stencil": contract}))
