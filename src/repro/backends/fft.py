"""Spectral backend: simulated FFTW / cuFFT descriptors.

No idiom in the IDL library lowers to a spectral API yet (FT's Fourier
kernels are below the matcher's reach), so this backend registers
*descriptors only*: it participates in registry discovery, ``--backends``
filtering, and planner capability queries under the ``spectral_op``
category, and supplies numerically exact transform kernels for when a
spectral idiom lands.
"""

from __future__ import annotations

import numpy as np


def fft(x: np.ndarray) -> np.ndarray:
    """Forward complex DFT (numpy-exact, like every backend here)."""
    return np.fft.fft(x)


def ifft(x: np.ndarray) -> np.ndarray:
    return np.fft.ifft(x)


def rfft_convolve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Circular convolution via the frequency domain."""
    n = max(a.shape[-1], b.shape[-1])
    return np.fft.irfft(np.fft.rfft(a, n) * np.fft.rfft(b, n), n)


def register_backend(registry) -> None:
    from .api import CUFFT, FFTW
    from .registry import BackendEntry

    registry.register(BackendEntry(
        name="fft", title="Spectral transform libraries",
        descriptors=(FFTW, CUFFT),
        contracts={}))
