"""Dense linear algebra kernels backing the simulated BLAS libraries.

These are the shared *functional* implementations behind MKL / cuBLAS /
clBLAS / CLBlast in this reproduction: numerically exact (numpy einsum),
with the per-API performance distinctions living in the cost model.

Layout conventions follow the GEMM idiom's binding (paper Figure 10):
``col`` iterates the output's first index dimension, ``row`` the
contraction dimension for the inputs.
"""

from __future__ import annotations

import numpy as np


def gemm_flat(a: np.ndarray, lda: int, b: np.ndarray, ldb: int,
              c: np.ndarray, ldc: int, m: int, n: int, k: int,
              alpha: float = 1.0, beta: float = 0.0) -> np.ndarray:
    """C[i + j*ldc] = beta*C + alpha * Σ_k A[i + k*lda] · B[j + k*ldb].

    All arrays are flat 1-D buffers (the Parboil sgemm layout: column
    slices of stride ld).
    """
    a_eff = np.reshape(a[:lda * k], (k, lda))[:, :m]     # a_eff[k, i]
    b_eff = np.reshape(b[:ldb * k], (k, ldb))[:, :n]     # b_eff[k, j]
    c_eff = np.reshape(c[:ldc * n], (n, ldc))[:, :m]     # c_eff[j, i]
    prod = np.einsum("ki,kj->ji", a_eff, b_eff)
    result = beta * c_eff + alpha * prod
    c_view = np.reshape(c[:ldc * n], (n, ldc))
    c_view[:, :m] = result
    return result


def gemm_2d(a: np.ndarray, a_colmajor: bool, b: np.ndarray, b_colmajor: bool,
            c: np.ndarray, c_colmajor: bool, m: int, n: int, k: int,
            alpha: float = 1.0, beta: float = 0.0) -> np.ndarray:
    """GEMM over nested-array operands.

    Each operand is a 2-D numpy view; ``*_colmajor`` says whether its
    first index is the ``col`` binding of the idiom (output index) or the
    ``row`` (contraction) binding.
    """
    a_eff = a[:m, :k] if a_colmajor else a[:k, :m].T     # a_eff[i, k]
    b_eff = b[:n, :k] if b_colmajor else b[:k, :n].T     # b_eff[j, k]
    prod = np.einsum("ik,jk->ij", a_eff, b_eff)          # prod[i, j]
    if c_colmajor:
        c[:m, :n] = beta * c[:m, :n] + alpha * prod
        return c[:m, :n]
    c[:n, :m] = beta * c[:n, :m] + alpha * prod.T
    return c[:n, :m]


def matmul_tt(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """out[i, j] = Σ_k a[i, k] · b[j, k] — both operands contraction-last.

    The kernel role the GEMM lowering contract supplies: operand views are
    normalised to [out_index, contraction] by the transformer, this does
    the multiply.
    """
    return np.einsum("ik,jk->ij", a, b)


def dot(x: np.ndarray, y: np.ndarray) -> float:
    return float(np.dot(x, y))


def axpy(alpha: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    y += alpha * x
    return y


def register_backend(registry) -> None:
    """Register the dense linear-algebra backend: four vendor BLAS
    descriptors sharing one GEMM lowering contract."""
    from .api import CLBLAS, CLBLAST, CUBLAS, MKL
    from .registry import BackendEntry, LoweringContract

    contract = LoweringContract(
        backend="blas", category="matrix_op",
        requires=("loop[0].iter_begin", "loop[0].iter_end",
                  "loop[1].iter_end", "loop[2].iter_end"),
        kernels={"matmul_tt": matmul_tt},
        emits="C = beta*C + alpha*(A·Bᵀ) over normalised operand views")
    registry.register(BackendEntry(
        name="blas", title="Dense BLAS libraries",
        descriptors=(MKL, CUBLAS, CLBLAS, CLBLAST),
        contracts={"matrix_op": contract}))
