"""API runtime: dispatch table for ``repro.api.*`` calls, and descriptors
of the heterogeneous APIs the paper targets (Table 3's columns).

The *functional* behaviour of every vendor library is shared (numpy/scipy
under the hood — bit-identical maths regardless of which API "runs" it);
what distinguishes cuBLAS from CLBlast from Lift in this reproduction is
the :class:`ApiDescriptor` performance profile consumed by
:mod:`repro.platform.cost`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import BackendError

#: Idiom kinds an API can implement, by Table-3 column.
API_DESCRIPTORS: "dict[str, ApiDescriptor]" = {}


@dataclass(frozen=True)
class ApiDescriptor:
    """One heterogeneous API (library or DSL backend).

    ``efficiency`` maps idiom category → fraction of device peak the API
    reaches for that idiom (the Table-3 calibration constants; documented
    in EXPERIMENTS.md).
    """

    name: str
    kind: str  # 'library' | 'dsl'
    platforms: tuple[str, ...]  # subset of ('cpu', 'igpu', 'gpu')
    efficiency: dict  # category -> float in (0, 1]
    launch_overhead_us: float = 20.0

    def supports(self, platform: str, category: str) -> bool:
        return platform in self.platforms and category in self.efficiency


def _register(descriptor: ApiDescriptor) -> ApiDescriptor:
    API_DESCRIPTORS[descriptor.name] = descriptor
    return descriptor


# Vendor libraries (paper §5.1). Efficiencies are calibration constants
# chosen so Table 3's who-beats-whom ordering is reproduced; they are not
# measurements of the real libraries.
MKL = _register(ApiDescriptor(
    "MKL", "library", ("cpu",),
    {"matrix_op": 0.90, "sparse_matrix_op": 0.60}, 5.0))
CUBLAS = _register(ApiDescriptor(
    "cuBLAS", "library", ("gpu",), {"matrix_op": 0.92}, 8.0))
CLBLAS = _register(ApiDescriptor(
    "clBLAS", "library", ("igpu", "gpu"), {"matrix_op": 0.75}, 12.0))
CLBLAST = _register(ApiDescriptor(
    "CLBlast", "library", ("igpu", "gpu"), {"matrix_op": 0.62}, 12.0))
CUSPARSE = _register(ApiDescriptor(
    "cuSPARSE", "library", ("gpu",), {"sparse_matrix_op": 0.85}, 8.0))
CLSPARSE = _register(ApiDescriptor(
    "clSPARSE", "library", ("igpu", "gpu"), {"sparse_matrix_op": 0.65}, 12.0))
LIBSPMV = _register(ApiDescriptor(
    "libSPMV", "library", ("cpu", "igpu", "gpu"),
    {"sparse_matrix_op": 0.55}, 6.0))

# DSL code generators (paper §5.2).
HALIDE = _register(ApiDescriptor(
    "Halide", "dsl", ("cpu",),  # the paper's Halide failed to emit GPU code
    {"stencil": 0.80, "matrix_op": 0.45, "scalar_reduction": 0.55}, 10.0))
LIFT = _register(ApiDescriptor(
    "Lift", "dsl", ("cpu", "igpu", "gpu"),
    {"stencil": 0.70, "scalar_reduction": 0.75,
     "histogram_reduction": 0.60, "matrix_op": 0.40}, 15.0))

#: APIs eligible per idiom category (Table 3 columns per row group).
def apis_for(category: str, platform: str) -> list[ApiDescriptor]:
    return [d for d in API_DESCRIPTORS.values()
            if d.supports(platform, category)]


# ---------------------------------------------------------------------------
# Runtime dispatch
# ---------------------------------------------------------------------------

@dataclass
class ApiCallSite:
    """One transformed idiom instance: a callable handler plus metadata."""

    call_id: int
    idiom: str
    category: str
    #: (args: list, engine) -> value. ``engine`` is the active execution
    #: engine (reference interpreter or register VM); handlers must not
    #: depend on engine internals beyond the shared Pointer/Buffer model.
    handler: Callable
    description: str = ""
    #: Static workload statistics for the cost model, filled by the
    #: transformer: flops per element, bytes touched, etc.
    stats: dict = field(default_factory=dict)

    @property
    def callee(self) -> str:
        return f"repro.api.call{self.call_id}"


class ApiRuntime:
    """Holds transformed call sites and dispatches interpreter API calls."""

    def __init__(self) -> None:
        self.sites: dict[str, ApiCallSite] = {}
        self._next_id = 0

    def new_site(self, idiom: str, category: str, handler: Callable,
                 description: str = "") -> ApiCallSite:
        site = ApiCallSite(self._next_id, idiom, category, handler,
                           description)
        self._next_id += 1
        self.sites[site.callee] = site
        return site

    def dispatch(self, callee: str, args: list, engine):
        """Run one transformed call site; ``engine`` is whichever
        execution engine (interpreter or VM) hit the call."""
        site = self.sites.get(callee)
        if site is None:
            raise BackendError(f"no API call site registered for {callee}")
        return site.handler(args, engine)

    def all_sites(self) -> list[ApiCallSite]:
        return sorted(self.sites.values(), key=lambda s: s.call_id)
