"""API runtime: dispatch table for ``repro.api.*`` calls, and descriptors
of the heterogeneous APIs the paper targets (Table 3's columns).

The *functional* behaviour of every vendor library is shared (numpy/scipy
under the hood — bit-identical maths regardless of which API "runs" it);
what distinguishes cuBLAS from CLBlast from Lift in this reproduction is
the :class:`ApiDescriptor` performance profile consumed by
:mod:`repro.platform.cost` and :mod:`repro.platform.placement`.

Descriptors are *deeply immutable*: the per-category efficiency table is a
:class:`FrozenMap`, so a descriptor is hashable and safe to share (or
pickle) across process-pool detection workers without aliasing hazards.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Callable

from ..errors import BackendError
from ..reliability import faults
from ..reliability.quarantine import Quarantine

#: Idiom kinds an API can implement, by Table-3 column.
API_DESCRIPTORS: "dict[str, ApiDescriptor]" = {}


class FrozenMap(Mapping):
    """An immutable, hashable, picklable mapping.

    ``types.MappingProxyType`` is neither hashable nor picklable, which
    rules it out for descriptors shared with process-pool workers; this
    stores a sorted item tuple instead.
    """

    __slots__ = ("_items", "_map")

    def __init__(self, items=()):
        mapping = dict(items)
        object.__setattr__(self, "_items",
                           tuple(sorted(mapping.items())))
        object.__setattr__(self, "_map", mapping)

    def __getitem__(self, key):
        return self._map[key]

    def __iter__(self):
        return iter(self._map)

    def __len__(self):
        return len(self._map)

    def __hash__(self):
        return hash(self._items)

    def __eq__(self, other):
        if isinstance(other, FrozenMap):
            return self._items == other._items
        return Mapping.__eq__(self, other) is True

    def __setattr__(self, name, value):
        raise AttributeError("FrozenMap is immutable")

    def __reduce__(self):
        return (FrozenMap, (self._items,))

    def __repr__(self):
        return f"FrozenMap({dict(self._items)!r})"


@dataclass(frozen=True)
class ApiDescriptor:
    """One heterogeneous API (library or DSL backend).

    ``efficiency`` maps idiom category → fraction of device peak the API
    reaches for that idiom (the Table-3 calibration constants; documented
    in EXPERIMENTS.md). It is frozen into a :class:`FrozenMap` on
    construction, making the descriptor hashable end to end.
    """

    name: str
    kind: str  # 'library' | 'dsl' | 'runtime'
    platforms: tuple[str, ...]  # subset of ('cpu', 'igpu', 'gpu')
    efficiency: Mapping  # category -> float in (0, 1]
    launch_overhead_us: float = 20.0

    def __post_init__(self):
        if not isinstance(self.efficiency, FrozenMap):
            object.__setattr__(self, "efficiency",
                               FrozenMap(self.efficiency))
        if not isinstance(self.platforms, tuple):
            object.__setattr__(self, "platforms", tuple(self.platforms))

    def supports(self, platform: str, category: str) -> bool:
        return platform in self.platforms and category in self.efficiency


def _register(descriptor: ApiDescriptor) -> ApiDescriptor:
    API_DESCRIPTORS[descriptor.name] = descriptor
    return descriptor


# Vendor libraries (paper §5.1). Efficiencies are calibration constants
# chosen so Table 3's who-beats-whom ordering is reproduced; they are not
# measurements of the real libraries.
MKL = _register(ApiDescriptor(
    "MKL", "library", ("cpu",),
    {"matrix_op": 0.90, "sparse_matrix_op": 0.60}, 5.0))
CUBLAS = _register(ApiDescriptor(
    "cuBLAS", "library", ("gpu",), {"matrix_op": 0.92}, 8.0))
CLBLAS = _register(ApiDescriptor(
    "clBLAS", "library", ("igpu", "gpu"), {"matrix_op": 0.75}, 12.0))
CLBLAST = _register(ApiDescriptor(
    "CLBlast", "library", ("igpu", "gpu"), {"matrix_op": 0.62}, 12.0))
CUSPARSE = _register(ApiDescriptor(
    "cuSPARSE", "library", ("gpu",), {"sparse_matrix_op": 0.85}, 8.0))
CLSPARSE = _register(ApiDescriptor(
    "clSPARSE", "library", ("igpu", "gpu"), {"sparse_matrix_op": 0.65}, 12.0))
LIBSPMV = _register(ApiDescriptor(
    "libSPMV", "library", ("cpu", "igpu", "gpu"),
    {"sparse_matrix_op": 0.55}, 6.0))

# DSL code generators (paper §5.2).
HALIDE = _register(ApiDescriptor(
    "Halide", "dsl", ("cpu",),  # the paper's Halide failed to emit GPU code
    {"stencil": 0.80, "matrix_op": 0.45, "scalar_reduction": 0.55}, 10.0))
LIFT = _register(ApiDescriptor(
    "Lift", "dsl", ("cpu", "igpu", "gpu"),
    {"stencil": 0.70, "scalar_reduction": 0.75,
     "histogram_reduction": 0.60, "matrix_op": 0.40}, 15.0))

# Spectral libraries: no idiom lowers to them yet (no FFT constraint in
# the IDL library), but they participate in registry/planner queries for
# scenario diversity and future spectral idioms. Deliberately *not* in
# API_DESCRIPTORS — that dict reproduces Table 3's columns, and these
# APIs are not in the paper's table; they are reachable only through the
# backend registry.
FFTW = ApiDescriptor("FFTW", "library", ("cpu",), {"spectral_op": 0.85},
                     4.0)
CUFFT = ApiDescriptor("cuFFT", "library", ("gpu",), {"spectral_op": 0.90},
                      8.0)

# Parallel-CPU runtime (an OpenMP-style fallback): runs every idiom
# category on the host at modest efficiency, calibrated strictly below
# the per-category CPU winners. Registry-only for the same reason as the
# spectral APIs: its value is as a planner fallback when transfer costs
# sink every accelerator, not as a Table 3 column.
OPENMP_RT = ApiDescriptor(
    "OpenMP", "runtime", ("cpu",),
    {"scalar_reduction": 0.50, "histogram_reduction": 0.35,
     "stencil": 0.45, "matrix_op": 0.30, "sparse_matrix_op": 0.40,
     "spectral_op": 0.30}, 2.0)


#: APIs eligible per idiom category (Table 3 columns per row group).
def apis_for(category: str, platform: str) -> list[ApiDescriptor]:
    return [d for d in API_DESCRIPTORS.values()
            if d.supports(platform, category)]


# ---------------------------------------------------------------------------
# Runtime dispatch
# ---------------------------------------------------------------------------

@dataclass
class ApiCallSite:
    """One transformed idiom instance: a callable handler plus metadata."""

    call_id: int
    idiom: str
    category: str
    #: (args: list, engine) -> value. ``engine`` is the active execution
    #: engine (reference interpreter or register VM); handlers must not
    #: depend on engine internals beyond the shared Pointer/Buffer model.
    handler: Callable
    description: str = ""
    #: Static workload statistics for the cost model, filled by the
    #: transformer: flops per element, bytes touched, etc.
    stats: dict = field(default_factory=dict)
    #: 'call' for transformed idioms, 'guard' for runtime aliasing checks
    #: (guards never appear in ``all_sites`` or the cost model).
    kind: str = "call"
    #: Name of the registry backend whose contract lowered this site.
    backend: str = ""
    #: Argument indexes of pointer operands the handler reads / writes —
    #: the residency planner's buffer-access schema, and the aliasing
    #: guard's overlap sets.
    reads: tuple = ()
    writes: tuple = ()
    #: True when the call is multi-versioned behind a runtime aliasing
    #: guard (the original loop was kept as the fallback path). False for
    #: result-producing idioms (read-only, no hazard), shared-loop groups,
    #: and regions whose CFG does not admit the guard structure — those
    #: keep the seed's unguarded replacement, as the paper concedes.
    guarded: bool = False
    #: The :class:`~repro.platform.placement.SitePlacement` chosen by the
    #: offload planner — set on the sites of every plan returned by
    #: ``plan_module`` (the most recent planner run wins), ``None`` before
    #: any planning.
    placement: object = None

    @property
    def callee(self) -> str:
        return f"repro.api.call{self.call_id}"


#: Per-process cap on recorded dispatch events; beyond it the planner
#: falls back to per-site aggregate statistics.
EVENT_CAP = 100_000


class ApiRuntime:
    """Holds transformed call sites and dispatches interpreter API calls.

    Besides dispatching, the runtime records a **residency event log**:
    one entry per dynamic API call, listing the buffers the handler
    touched (identity, size, access mode). The offload planner replays
    this log to charge host↔device transfers only on actual residency
    changes along the real execution order — see
    :mod:`repro.platform.placement`.

    Dispatch at **guarded** sites is failure-contained: the IR's guarded
    multi-version keeps the original loop reachable behind the site's i1
    result, so a handler that raises is caught, any partial writes to its
    output buffers are rolled back (``failsafe``), the failure is counted
    against the (backend, category) pair in ``quarantine``, and the
    dispatch answers 0 — the workload re-runs the intact original loop
    and produces the exact pre-transformation result. Once a pair trips
    the quarantine threshold its guarded sites skip the handler outright,
    and quarantine-aware planners/transformers stop selecting it.
    """

    def __init__(self) -> None:
        self.sites: dict[str, ApiCallSite] = {}
        self._next_id = 0
        #: [(call_id, ((buffer_key, nbytes, mode), ...)), ...]
        self.events: list = []
        self.events_overflowed = False
        #: call_id -> location name ('host'/'igpu'/'gpu'); when set, the
        #: runtime tracks residency live and tallies measured transfer
        #: bytes/events into each site's stats.
        self.placement_locations: dict | None = None
        self._residency = None
        #: (backend, category) dispatch-failure ledger.
        self.quarantine = Quarantine()
        #: Roll back partial output writes before falling back. Costs one
        #: buffer copy per guarded dispatch; disable only for workloads
        #: whose handlers are known to write all-or-nothing.
        self.failsafe = True
        #: One record per contained dispatch failure, in firing order.
        self.dispatch_failures: list[dict] = []

    def new_site(self, idiom: str, category: str, handler: Callable,
                 description: str = "", backend: str = "",
                 reads: tuple = (), writes: tuple = ()) -> ApiCallSite:
        site = ApiCallSite(self._next_id, idiom, category, handler,
                           description, kind="call", backend=backend,
                           reads=tuple(reads), writes=tuple(writes))
        self._next_id += 1
        self.sites[site.callee] = site
        return site

    def new_guard(self, of_site: ApiCallSite, handler: Callable
                  ) -> ApiCallSite:
        """An aliasing-guard site: returns 1 when the fast path is safe."""
        guard = ApiCallSite(self._next_id, of_site.idiom, of_site.category,
                            handler, f"aliasing guard for {of_site.callee}",
                            kind="guard")
        self._next_id += 1
        self.sites[guard.callee] = guard
        return guard

    def discard(self, site: ApiCallSite) -> None:
        """Unregister a site whose transformation was abandoned (partial
        failure of a multi-match group)."""
        self.sites.pop(site.callee, None)

    def set_placement(self, locations: dict) -> None:
        """Enable live residency tracking under a planner assignment.

        ``locations`` maps call_id → location name as produced by
        :meth:`repro.platform.placement.PlacementPlan.locations`.
        """
        from ..platform.placement import ResidencyState

        self.placement_locations = dict(locations)
        self._residency = ResidencyState()

    def _accesses(self, site: ApiCallSite, args: list) -> tuple:
        accesses = []
        reads, writes = set(site.reads), set(site.writes)
        for index in sorted(reads | writes):
            if index >= len(args):
                continue
            buffer = getattr(args[index], "buffer", None)
            if buffer is None:
                continue
            mode = ("rw" if index in reads and index in writes
                    else "w" if index in writes else "r")
            accesses.append((id(buffer), buffer.nbytes, mode))
        return tuple(accesses)

    def dispatch(self, callee: str, args: list, engine):
        """Run one transformed call site; ``engine`` is whichever
        execution engine (interpreter or VM) hit the call."""
        site = self.sites.get(callee)
        if site is None:
            raise BackendError(f"no API call site registered for {callee}")
        if site.kind == "call" and (site.reads or site.writes):
            accesses = self._accesses(site, args)
            if accesses:
                if len(self.events) < EVENT_CAP:
                    self.events.append((site.call_id, accesses))
                else:
                    self.events_overflowed = True
                if self.placement_locations is not None:
                    self._track(site, accesses)
        if site.kind == "call" and site.guarded:
            return self._dispatch_guarded(site, args, engine)
        if site.kind == "call":
            faults.maybe_fire("backend.dispatch",
                              f"{site.backend}/{site.callee}")
        return site.handler(args, engine)

    def _dispatch_guarded(self, site: ApiCallSite, args: list, engine):
        """Guarded-site dispatch: 1 on success, 0 to run the original
        loop (quarantined backend, or a handler failure — contained,
        rolled back, and recorded)."""
        if self.quarantine.is_quarantined(site.backend, site.category):
            site.stats["quarantine_skips"] = \
                site.stats.get("quarantine_skips", 0) + 1
            return 0
        snapshot = self._snapshot_writes(site, args) if self.failsafe \
            else None
        try:
            faults.maybe_fire("backend.dispatch",
                              f"{site.backend}/{site.callee}")
            site.handler(args, engine)
        except Exception as exc:
            self._restore_writes(snapshot)
            quarantined = self.quarantine.record_failure(
                site.backend, site.category, str(exc))
            site.stats["dispatch_failures"] = \
                site.stats.get("dispatch_failures", 0) + 1
            self.dispatch_failures.append({
                "callee": site.callee, "backend": site.backend,
                "category": site.category, "error": str(exc),
                "quarantined": quarantined,
            })
            return 0
        return 1

    @staticmethod
    def _snapshot_writes(site: ApiCallSite, args: list) -> list:
        """Copies of the output buffers a failing handler may have
        partially written; keyed by buffer identity (a handler writing
        two views of one buffer snapshots it once)."""
        snapshot: list = []
        seen: set = set()
        for index in site.writes:
            if index >= len(args):
                continue
            buffer = getattr(args[index], "buffer", None)
            if buffer is None or id(buffer) in seen:
                continue
            seen.add(id(buffer))
            snapshot.append((buffer, buffer.data.copy()))
        return snapshot

    @staticmethod
    def _restore_writes(snapshot: list | None) -> None:
        if not snapshot:
            return
        for buffer, saved in snapshot:
            buffer.data[...] = saved

    def _track(self, site: ApiCallSite, accesses: tuple) -> None:
        location = self.placement_locations.get(site.call_id, "host")
        moved_bytes = 0
        moved_events = 0
        for key, nbytes, mode in accesses:
            for _, link_bytes in self._residency.access(location, key,
                                                        nbytes, mode):
                moved_bytes += link_bytes
                moved_events += 1
        stats = site.stats
        stats["measured_xfer_bytes"] = \
            stats.get("measured_xfer_bytes", 0) + moved_bytes
        stats["measured_xfer_events"] = \
            stats.get("measured_xfer_events", 0) + moved_events

    def all_sites(self) -> list[ApiCallSite]:
        """Transformed idiom call sites (guards excluded), in call order."""
        return sorted((s for s in self.sites.values() if s.kind == "call"),
                      key=lambda s: s.call_id)
