"""A miniature Lift: functional data-parallel patterns with rewrite rules.

Models the Lift pipeline the paper uses (§5.2, Figure 15): programs are
compositions of ``map``, ``reduce``, ``zip``, ``split``, ``join`` and
``transpose`` over arrays, with user functions supplied as sequential C
kernels (here: extracted kernel expressions). A small rewrite system
mirrors Lift's exploration — e.g. map-fusion and map→mapGlobal device
mapping — and ``compile`` lowers a pattern tree to a numpy-executable
callable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import BackendError


# ---------------------------------------------------------------------------
# Pattern language
# ---------------------------------------------------------------------------

class Pattern:
    """Base class of Lift expressions."""


@dataclass(frozen=True)
class Input(Pattern):
    """A named program input."""

    name: str


@dataclass(frozen=True)
class UserFun(Pattern):
    """A scalar user function (from an extracted kernel)."""

    name: str
    arity: int
    fn: Callable  # vectorised: ndarray args -> ndarray
    source: str = ""  # C source, as handed over by the IR-to-C backend


@dataclass(frozen=True)
class Map(Pattern):
    fn: Pattern  # UserFun or Lambda-like composition
    arg: Pattern
    device: str = "seq"  # 'seq' | 'global' | 'local'


@dataclass(frozen=True)
class Reduce(Pattern):
    fn: Pattern  # binary UserFun
    init: float
    arg: Pattern


@dataclass(frozen=True)
class Zip(Pattern):
    args: tuple


@dataclass(frozen=True)
class Split(Pattern):
    width: int
    arg: Pattern


@dataclass(frozen=True)
class Join(Pattern):
    arg: Pattern


@dataclass(frozen=True)
class Transpose(Pattern):
    arg: Pattern


# ---------------------------------------------------------------------------
# Rewrite rules (Lift's exploration, abridged)
# ---------------------------------------------------------------------------

def rewrite_map_to_global(pattern: Pattern) -> Pattern:
    """Outermost maps become device-parallel (mapGlobal)."""
    if isinstance(pattern, Map) and pattern.device == "seq":
        return Map(pattern.fn, pattern.arg, device="global")
    return pattern


def rewrite_split_join(pattern: Pattern, width: int) -> Pattern:
    """map(f) → join ∘ map(map(f)) ∘ split — Lift's tiling rule."""
    if isinstance(pattern, Map):
        inner = Map(pattern.fn, Input("__chunk"), device="seq")
        return Join(Map(_Chunked(inner), Split(width, pattern.arg),
                        device=pattern.device))
    return pattern


@dataclass(frozen=True)
class _Chunked(Pattern):
    body: Pattern


def apply_rewrites(pattern: Pattern,
                   rules: list[Callable[[Pattern], Pattern]]) -> Pattern:
    for rule in rules:
        pattern = rule(pattern)
    return pattern


# ---------------------------------------------------------------------------
# Compilation to numpy callables
# ---------------------------------------------------------------------------

def compile_pattern(pattern: Pattern) -> Callable[[dict], np.ndarray]:
    """Lower a pattern tree to ``fn(inputs: dict[str, ndarray])``."""

    def run(node: Pattern, env: dict):
        if isinstance(node, Input):
            if node.name not in env:
                raise BackendError(f"unbound Lift input {node.name!r}")
            return env[node.name]
        if isinstance(node, Zip):
            parts = [run(a, env) for a in node.args]
            return tuple(parts)
        if isinstance(node, Map):
            arg = run(node.arg, env)
            fn = node.fn
            if isinstance(fn, UserFun):
                if isinstance(arg, tuple):
                    return fn.fn(*arg)
                return fn.fn(arg)
            raise BackendError("map over non-userfun")
        if isinstance(node, Reduce):
            arg = run(node.arg, env)
            fn = node.fn
            if not isinstance(fn, UserFun) or fn.arity != 2:
                raise BackendError("reduce requires a binary user function")
            if isinstance(arg, tuple):
                raise BackendError("reduce over unzipped tuple")
            if fn.name == "add":
                return node.init + np.sum(arg)
            if fn.name == "max":
                return max(node.init, np.max(arg)) if np.size(arg) else \
                    node.init
            if fn.name == "min":
                return min(node.init, np.min(arg)) if np.size(arg) else \
                    node.init
            acc = node.init
            for value in np.asarray(arg).reshape(-1):
                acc = fn.fn(acc, value)
            return acc
        if isinstance(node, Split):
            arr = np.asarray(run(node.arg, env))
            n = arr.shape[0] // node.width
            return arr[:n * node.width].reshape(n, node.width,
                                                *arr.shape[1:])
        if isinstance(node, Join):
            arr = np.asarray(run(node.arg, env))
            return arr.reshape(arr.shape[0] * arr.shape[1], *arr.shape[2:])
        if isinstance(node, Transpose):
            return np.asarray(run(node.arg, env)).T
        raise BackendError(f"cannot compile Lift node {node!r}")

    return lambda inputs: run(pattern, inputs)


# ---------------------------------------------------------------------------
# Translation from detected idioms (paper §6.2)
# ---------------------------------------------------------------------------

def reduction_to_lift(delta_fn: Callable, kind: str, init: float,
                      n_inputs: int, kernel_source: str = "") -> Pattern:
    """reduce(op, init, map(delta, zip(inputs...))) — Figure 15's shape."""
    op_name = {"sum": "add", "max": "max", "min": "min"}.get(kind)
    if op_name is None:
        raise BackendError(f"unknown reduction kind {kind!r}")
    op = UserFun(op_name, 2, {"add": np.add, "max": np.maximum,
                              "min": np.minimum}[op_name])
    inputs: Pattern
    if n_inputs == 1:
        inputs = Input("in0")
    else:
        inputs = Zip(tuple(Input(f"in{i}") for i in range(n_inputs)))
    mapped = Map(UserFun("delta", n_inputs, delta_fn, kernel_source), inputs)
    mapped = rewrite_map_to_global(mapped)
    return Reduce(op, init, mapped)


def gemm_in_lift(alpha: float = 1.0, beta: float = 0.0) -> Pattern:
    """The paper's Figure 15 GEMM skeleton (inputs: A, Bt, C)."""
    def row_dot(a_row, b_col):
        return np.sum(a_row * b_col)

    def full(a, bt, c):
        prod = a @ bt.T
        return alpha * prod + beta * c

    return Map(UserFun("gemm_row", 3, full), Zip((Input("A"), Input("Bt"),
                                                  Input("C"))),
               device="global")


def register_backend(registry) -> None:
    """Register the Lift backend: reduction / histogram / stencil lowering
    contracts around the shared kernel evaluator, with the pattern
    translators exposed for the DSL code path."""
    from ..transform.kernels import evaluate
    from .api import LIFT
    from .registry import BackendEntry, LoweringContract

    reduction = LoweringContract(
        backend="lift", category="scalar_reduction",
        requires=("old_value", "iter_begin", "iter_end", "ind_init",
                  "kernel.output"),
        kernels={"evaluate": evaluate, "pipeline": reduction_to_lift},
        emits="reduce(op, init, map(delta, zip(inputs)))")
    histogram = LoweringContract(
        backend="lift", category="histogram_reduction",
        requires=("base_pointer", "old_value", "iter_begin", "iter_end",
                  "kernel.output", "indexkernel.output", "store"),
        kernels={"evaluate": evaluate},
        emits="guarded scatter-accumulate over computed bins")
    stencil = LoweringContract(
        backend="lift", category="stencil",
        requires=("kernel.output",),
        kernels={"evaluate": evaluate},
        emits="shifted-slice kernel evaluation over the index box")
    registry.register(BackendEntry(
        name="lift", title="Lift data-parallel pattern DSL",
        descriptors=(LIFT,),
        contracts={"scalar_reduction": reduction,
                   "histogram_reduction": histogram,
                   "stencil": stencil}))
