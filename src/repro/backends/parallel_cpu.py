"""Parallel-CPU backend: an OpenMP-style host runtime.

Models compiling the matched idiom to threaded host code instead of
offloading it: every category is supported on the CPU at modest
efficiency (calibrated strictly below the per-category CPU winners so
Table 3 / Figure 18 orderings are unchanged) with near-zero launch
overhead and no transfer cost. Its role is planner scenario diversity —
the fallback placement when transfer costs sink every accelerator, and
the last-resort lowering contract when ``--backends`` excludes the DSLs.
"""

from __future__ import annotations


def register_backend(registry) -> None:
    from ..transform.kernels import evaluate
    from .api import OPENMP_RT
    from .registry import BackendEntry, LoweringContract

    def generic(category: str, requires: tuple) -> LoweringContract:
        return LoweringContract(
            backend="parallel-cpu", category=category,
            requires=requires,
            kernels={"evaluate": evaluate},
            emits="threaded host loop over the extracted kernel")

    registry.register(BackendEntry(
        name="parallel-cpu", title="OpenMP-style host runtime",
        descriptors=(OPENMP_RT,),
        contracts={
            "scalar_reduction": generic(
                "scalar_reduction",
                ("old_value", "iter_begin", "iter_end", "ind_init",
                 "kernel.output")),
            "histogram_reduction": generic(
                "histogram_reduction",
                ("base_pointer", "old_value", "iter_begin", "iter_end",
                 "kernel.output", "indexkernel.output", "store")),
            "stencil": generic("stencil", ("kernel.output",)),
        }))
