"""Pluggable backend registry: API catalogs queried by capability.

The transformer used to hard-import ``blas``/``sparse`` and the cost layer
enumerated a global descriptor dict. This module replaces both with a
discoverable registry in the style of SOAR's ``ApiMatching`` catalog:

* every backend (``blas``, ``sparse``, ``halide``, ``lift``, ``fft``,
  ``parallel-cpu``) registers a :class:`BackendEntry` naming its
  :class:`~repro.backends.api.ApiDescriptor` performance profiles, and
* per idiom category a :class:`LoweringContract` stating what the backend
  *needs from a match* (solution keys) and which numeric kernels it
  supplies to the emitted handler.

Replacement consults ``contracts_for(category)`` instead of first-match
imports; the offload planner consults ``apis_for(category, device)`` for
its candidate (API, device) placements. Both accept an ``allowed``
backend subset (the ``--backends`` CLI flag).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from ..errors import BackendError
from .api import ApiDescriptor, FrozenMap


@dataclass(frozen=True)
class LoweringContract:
    """What one backend needs from a match of one idiom category.

    ``requires`` lists the solution keys the lowering consumes; a match
    that lacks any of them cannot be lowered under this contract.
    ``kernels`` maps kernel-role names (``"spmv"``, ``"matmul_tt"``,
    ``"evaluate"``) to the callables the emitted handler computes with —
    the only place numeric primitives enter the transformer.
    """

    backend: str
    category: str
    requires: tuple
    kernels: Mapping
    emits: str = ""

    def __post_init__(self):
        if not isinstance(self.kernels, FrozenMap):
            object.__setattr__(self, "kernels", FrozenMap(self.kernels))
        object.__setattr__(self, "requires", tuple(self.requires))

    def satisfied_by(self, solution: Mapping) -> bool:
        return all(key in solution for key in self.requires)

    def missing(self, solution: Mapping) -> list[str]:
        return [key for key in self.requires if key not in solution]


@dataclass
class BackendEntry:
    """One pluggable backend: descriptors plus per-category contracts."""

    name: str
    title: str
    descriptors: tuple = ()
    contracts: dict = field(default_factory=dict)  # category -> contract

    def contract(self, category: str) -> LoweringContract | None:
        return self.contracts.get(category)


class BackendRegistry:
    """Discoverable catalog of backends, queried by capability."""

    def __init__(self) -> None:
        self._entries: dict[str, BackendEntry] = {}

    # -- registration --------------------------------------------------------
    def register(self, entry: BackendEntry) -> BackendEntry:
        if entry.name in self._entries:
            raise BackendError(f"backend {entry.name!r} already registered")
        for contract in entry.contracts.values():
            if contract.backend != entry.name:
                raise BackendError(
                    f"contract backend {contract.backend!r} does not match "
                    f"entry {entry.name!r}")
        self._entries[entry.name] = entry
        return entry

    # -- queries -------------------------------------------------------------
    def names(self) -> list[str]:
        return list(self._entries)

    def get(self, name: str) -> BackendEntry:
        entry = self._entries.get(name)
        if entry is None:
            raise BackendError(
                f"unknown backend {name!r} "
                f"(registered: {', '.join(self._entries) or 'none'})")
        return entry

    def entries(self, allowed=None) -> list[BackendEntry]:
        if allowed is None:
            return list(self._entries.values())
        unknown = set(allowed) - set(self._entries)
        if unknown:
            raise BackendError(
                f"unknown backends: {', '.join(sorted(unknown))} "
                f"(registered: {', '.join(self._entries)})")
        return [e for e in self._entries.values() if e.name in allowed]

    def descriptors(self, allowed=None) -> list[ApiDescriptor]:
        out: list[ApiDescriptor] = []
        for entry in self.entries(allowed):
            out.extend(entry.descriptors)
        return out

    def apis_for(self, category: str, platform: str,
                 allowed=None) -> list[ApiDescriptor]:
        """Descriptors able to *run* ``category`` on ``platform``."""
        return [d for d in self.descriptors(allowed)
                if d.supports(platform, category)]

    def contracts_for(self, category: str, allowed=None,
                      quarantine=None) -> list[LoweringContract]:
        """Contracts able to *lower* a match of ``category``, in
        registration order (the transformer tries them in turn).

        ``quarantine`` (a :class:`~repro.reliability.quarantine.Quarantine`)
        drops backends whose (backend, category) pair is quarantined, so
        re-transformation after repeated dispatch failures selects the
        next registered backend instead of the one that keeps failing."""
        out = []
        for entry in self.entries(allowed):
            contract = entry.contract(category)
            if contract is not None and not (
                    quarantine is not None and
                    quarantine.is_quarantined(entry.name, category)):
                out.append(contract)
        return out

    def categories(self) -> list[str]:
        seen: dict[str, None] = {}
        for entry in self._entries.values():
            for category in entry.contracts:
                seen.setdefault(category, None)
        return list(seen)


_DEFAULT: BackendRegistry | None = None


def default_registry() -> BackendRegistry:
    """The process-wide registry, populated lazily from the backend
    modules (avoids import cycles with :mod:`repro.transform`)."""
    global _DEFAULT
    if _DEFAULT is None:
        registry = BackendRegistry()
        from . import blas, fft, halide, lift, parallel_cpu, sparse
        for module in (blas, sparse, halide, lift, fft, parallel_cpu):
            module.register_backend(registry)
        _DEFAULT = registry
    return _DEFAULT
