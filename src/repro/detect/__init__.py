"""Baseline comparators (Polly/ICC models) for Table 1."""

from .baselines import baseline_counts, icc_detects, polly_detects

__all__ = ["baseline_counts", "icc_detects", "polly_detects"]
