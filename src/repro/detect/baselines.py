"""Baseline detector models: Polly-style and ICC-style (paper §7, Table 1).

The paper compares against two parallelising compilers that are not idiom
detectors: Polly (polyhedral SCoPs) and ICC (dependence-based scalar
reduction parallelisation). Neither tool exists here, so the comparison is
*modelled*: each baseline accepts an idiom instance only when the
structural preconditions the real tool needs are met. The preconditions
encode the paper's explanation of WHY the baselines miss idioms —
"such code involves indirect and thus non-affine memory accesses [which]
fundamentally contradicts assumptions that these tools rely on":

* **ICC-style**: scalar reductions in canonical counted loops with no
  conditional control flow, no min/max selects, no function calls and no
  indirect (load-indexed) accesses.
* **Polly-style**: additionally requires a static control part —
  compile-time-constant loop bounds — and applies to scalar reductions and
  stencils only (Polly has no concept of histograms or sparse operations).
"""

from __future__ import annotations

from ..analysis.loops import LoopInfo
from ..idioms.matches import IdiomMatch
from ..ir.instructions import (
    BranchInst,
    CallInst,
    GEPInst,
    LoadInst,
    SelectInst,
)
from ..ir.values import ConstantInt, Value


def _loop_of(match: IdiomMatch):
    iterator = match.value("iterator") or match.value("iterator[0]")
    if iterator is None or iterator.parent is None:
        return None
    info = LoopInfo(match.function)
    for loop in info.loops:
        if loop.header is iterator.parent:
            return loop
    return None


def _has_conditionals(loop) -> bool:
    for block in loop.blocks:
        term = block.terminator
        if block is loop.header:
            continue
        if isinstance(term, BranchInst) and term.is_conditional():
            return True
    return False


def _has_calls_or_selects(loop) -> bool:
    for inst in loop.instructions():
        if isinstance(inst, (CallInst, SelectInst)):
            return True
    return False


def _has_indirect_access(loop) -> bool:
    """A gep whose index is itself derived from a load (a[b[i]])."""
    for inst in loop.instructions():
        if isinstance(inst, GEPInst):
            for index in inst.indices:
                if _derives_from_load(index):
                    return True
    return False


def _derives_from_load(value: Value, depth: int = 0) -> bool:
    if depth > 6:
        return False
    if isinstance(value, LoadInst):
        return True
    from ..ir.values import User

    if isinstance(value, User) and not isinstance(value, LoadInst):
        from ..ir.instructions import PhiInst

        if isinstance(value, PhiInst):
            return False
        return any(_derives_from_load(op, depth + 1)
                   for op in value.operands)
    return False


def _constant_bounds(match: IdiomMatch) -> bool:
    for key in ("iter_begin", "iter_end", "loop[0].iter_begin",
                "loop[0].iter_end", "loop[1].iter_begin",
                "loop[1].iter_end", "loop[2].iter_begin",
                "loop[2].iter_end"):
        value = match.value(key)
        if value is None:
            continue
        if not isinstance(value, ConstantInt):
            return False
    return True


def icc_detects(match: IdiomMatch) -> bool:
    """Would the modelled ICC report this (as a parallel reduction)?"""
    if match.category != "scalar_reduction":
        return False
    loop = _loop_of(match)
    if loop is None:
        return False
    if _has_conditionals(loop) or _has_calls_or_selects(loop):
        return False
    if _has_indirect_access(loop):
        return False
    return True


def polly_detects(match: IdiomMatch) -> bool:
    """Would the modelled Polly capture this inside a valid SCoP?"""
    if match.category == "scalar_reduction":
        return icc_detects(match) and _constant_bounds(match)
    if match.category == "stencil":
        return _constant_bounds(match)
    return False  # no concept of histograms / sparse / GEMM idioms


def baseline_counts(matches: list[IdiomMatch]) -> dict:
    """Table-1 rows for the two baselines, by category."""
    rows = {"Polly": {}, "ICC": {}}
    for match in matches:
        if polly_detects(match):
            cat = match.category
            rows["Polly"][cat] = rows["Polly"].get(cat, 0) + 1
        if icc_detects(match):
            cat = match.category
            rows["ICC"][cat] = rows["ICC"].get(cat, 0) + 1
    return rows
