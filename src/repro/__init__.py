"""repro — reproduction of "Automatic Matching of Legacy Code to
Heterogeneous APIs: An Idiomatic Approach" (ASPLOS 2018).

Subpackages:

* :mod:`repro.ir` — LLVM-like SSA IR (types, instructions, parser/printer).
* :mod:`repro.frontend` — mini-C compiler producing that IR.
* :mod:`repro.passes` — mem2reg, CSE, LICM, DCE, CFG simplification, etc.
* :mod:`repro.analysis` — dominators, loops, SESE, data/memory flow.
* :mod:`repro.idl` — the Idiom Description Language and constraint solver.
* :mod:`repro.idioms` — the IDL idiom library and detection driver.
* :mod:`repro.detect` — Polly/ICC baseline comparator models.
* :mod:`repro.transform` — idiom replacement and kernel extraction.
* :mod:`repro.backends` — simulated vendor libraries + Halide/Lift DSLs.
* :mod:`repro.platform` — machine and roofline cost models.
* :mod:`repro.runtime` — IR interpreter, memory model, benchmark runner.
* :mod:`repro.workloads` — 21 NAS/Parboil benchmark recreations.
* :mod:`repro.experiments` — regeneration of every table and figure.
"""

__version__ = "1.0.0"
