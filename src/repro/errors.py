"""Shared exception hierarchy for the repro package.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch failures from any layer (frontend, IR, IDL, transform, runtime) with
one handler while still being able to discriminate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SourceLocation:
    """A (line, column) position in a source file, used in diagnostics."""

    __slots__ = ("line", "column", "filename")

    def __init__(self, line: int, column: int, filename: str = "<input>"):
        self.line = line
        self.column = column
        self.filename = filename

    def __repr__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SourceLocation):
            return NotImplemented
        return (self.line, self.column, self.filename) == (
            other.line,
            other.column,
            other.filename,
        )

    def __hash__(self) -> int:
        return hash((self.line, self.column, self.filename))


class DiagnosticError(ReproError):
    """An error with an attached source location."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.location = location
        if location is not None:
            message = f"{location}: {message}"
        super().__init__(message)


class LexError(DiagnosticError):
    """Tokenisation failure in one of the front ends (C or IDL)."""


class ParseError(DiagnosticError):
    """Syntax error in one of the front ends (C or IDL)."""


class SemanticError(DiagnosticError):
    """A well-formed program that violates static semantics."""


class IRError(ReproError):
    """Malformed IR detected while building or verifying a module."""


class VerificationError(IRError):
    """The IR verifier found a structural violation."""


class IDLError(ReproError):
    """Errors in IDL compilation or constraint solving."""


class SolveTimeout(IDLError):
    """A constraint solve exceeded its wall-clock deadline.

    Raised from :meth:`repro.idl.solver.SolverStats.tick` when a
    :class:`~repro.idl.solver.SolveLimits` deadline is armed; the
    detection layer catches it and degrades to a partial (possibly
    empty) match list for the offending function instead of aborting
    the session."""


class InjectedFault(ReproError):
    """A deterministic fault raised by :mod:`repro.reliability.faults`.

    Never raised in production: only an installed fault plan produces
    it. Every layer that supervises a fallible seam treats it exactly
    like the real failure it stands in for (an I/O error, a backend
    crash, a worker death), which is what makes the fault-injection
    matrix a faithful test of the recovery paths."""


class TransformError(ReproError):
    """Idiom replacement could not be applied."""


class BackendError(ReproError):
    """A heterogeneous API backend rejected or failed a request."""


class PlacementError(ReproError):
    """The offload planner could not produce a valid assignment."""


class CalibrationError(ReproError):
    """A calibration profile is malformed or could not be produced."""


class InterpreterError(ReproError):
    """Runtime failure while interpreting IR."""


class WorkloadError(ReproError):
    """A benchmark workload is misconfigured."""
