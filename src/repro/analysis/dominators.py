"""Dominator and post-dominator trees (Cooper-Harvey-Kennedy).

One generic core handles four variants: {dominance, post-dominance} ×
{block granularity, instruction granularity}. Queries are O(1) via
Euler-tour interval numbering of the dominator tree.
"""

from __future__ import annotations

from typing import Callable

from ..ir.instructions import Instruction
from ..ir.module import BasicBlock, Function
from .cfg import InstructionCFG, generic_rpo


class _VirtualExit:
    """Synthetic sink joining all function exits for post-dominance."""

    def __repr__(self) -> str:
        return "<virtual-exit>"


class GenericDomTree:
    """Dominator tree over an arbitrary graph."""

    def __init__(self, nodes: list, entries: list, successors: Callable,
                 predecessors: Callable):
        if not entries:
            raise ValueError("dominator tree needs at least one entry")
        self._virtual_root = None
        if len(entries) > 1:
            self._virtual_root = _VirtualExit()
            real_entries = list(entries)
            old_succ, old_pred = successors, predecessors

            def successors(n, _r=self._virtual_root, _e=real_entries, _s=old_succ):
                return _e if n is _r else _s(n)

            def predecessors(n, _r=self._virtual_root, _e=real_entries,
                             _p=old_pred):
                base = list(_p(n))
                if any(n is e for e in _e):
                    base.append(_r)
                return base

            entries = [self._virtual_root]
            nodes = [self._virtual_root] + list(nodes)

        self.root = entries[0]
        rpo = generic_rpo(entries, successors)
        self._rpo_index = {id(n): i for i, n in enumerate(rpo)}
        self._idom: dict[int, object] = {id(self.root): self.root}

        changed = True
        while changed:
            changed = False
            for node in rpo:
                if node is self.root:
                    continue
                new_idom = None
                for pred in predecessors(node):
                    if id(pred) not in self._rpo_index:
                        continue  # unreachable predecessor
                    if id(pred) in self._idom:
                        if new_idom is None:
                            new_idom = pred
                        else:
                            new_idom = self._intersect(pred, new_idom)
                if new_idom is not None and \
                        self._idom.get(id(node)) is not new_idom:
                    self._idom[id(node)] = new_idom
                    changed = True

        self._children: dict[int, list] = {id(n): [] for n in rpo}
        self._node_by_id = {id(n): n for n in rpo}
        for node in rpo:
            if node is self.root:
                continue
            idom = self._idom.get(id(node))
            if idom is not None:
                self._children[id(idom)].append(node)
        self._number()

    def _intersect(self, a, b):
        idx = self._rpo_index
        while a is not b:
            while idx[id(a)] > idx[id(b)]:
                a = self._idom[id(a)]
            while idx[id(b)] > idx[id(a)]:
                b = self._idom[id(b)]
        return a

    def _number(self) -> None:
        self._tin: dict[int, int] = {}
        self._tout: dict[int, int] = {}
        clock = 0
        stack: list[tuple[object, bool]] = [(self.root, False)]
        while stack:
            node, done = stack.pop()
            if done:
                self._tout[id(node)] = clock
                clock += 1
                continue
            self._tin[id(node)] = clock
            clock += 1
            stack.append((node, True))
            for child in self._children[id(node)]:
                stack.append((child, False))

    # -- queries -------------------------------------------------------------
    def contains(self, node) -> bool:
        return id(node) in self._tin

    def dominates(self, a, b) -> bool:
        """a dominates b (reflexive). Unreachable nodes dominate nothing."""
        if id(a) not in self._tin or id(b) not in self._tin:
            return False
        return (self._tin[id(a)] <= self._tin[id(b)]
                and self._tout[id(b)] <= self._tout[id(a)])

    def strictly_dominates(self, a, b) -> bool:
        return a is not b and self.dominates(a, b)

    def idom(self, node):
        """Immediate dominator, or None for the root/unreachable nodes."""
        if node is self.root:
            return None
        result = self._idom.get(id(node))
        if isinstance(result, _VirtualExit):
            return None
        return result

    def children(self, node) -> list:
        return [c for c in self._children.get(id(node), [])
                if not isinstance(c, _VirtualExit)]


class DominatorTree:
    """Facade bundling the four dominance variants used by IDL atoms."""

    def __init__(self, tree: GenericDomTree, post: bool):
        self._tree = tree
        self.post = post

    # -- constructors ------------------------------------------------------------
    @classmethod
    def block_level(cls, function: Function, post: bool = False) -> "DominatorTree":
        blocks = function.blocks
        if post:
            exits = [b for b in blocks
                     if not b.successors() and b.terminator is not None]
            # Include blocks that loop forever by treating them as non-exits;
            # with no exits at all, fall back to the last block.
            if not exits:
                exits = [blocks[-1]]
            tree = GenericDomTree(blocks, exits,
                                  lambda b: b.predecessors(),
                                  lambda b: b.successors())
        else:
            tree = GenericDomTree(blocks, [function.entry],
                                  lambda b: b.successors(),
                                  lambda b: b.predecessors())
        return cls(tree, post)

    @classmethod
    def instruction_level(cls, cfg: InstructionCFG,
                          post: bool = False) -> "DominatorTree":
        if post:
            exits = cfg.exits()
            if not exits:
                exits = [cfg.nodes[-1]]
            tree = GenericDomTree(cfg.nodes, exits, cfg.predecessors,
                                  cfg.successors)
        else:
            tree = GenericDomTree(cfg.nodes, [cfg.entry], cfg.successors,
                                  cfg.predecessors)
        return cls(tree, post)

    # -- queries ----------------------------------------------------------------
    def dominates(self, a, b) -> bool:
        return self._tree.dominates(a, b)

    def strictly_dominates(self, a, b) -> bool:
        return self._tree.strictly_dominates(a, b)

    def dominates_block(self, a: BasicBlock, b: BasicBlock) -> bool:
        return self._tree.dominates(a, b)

    def idom(self, node):
        return self._tree.idom(node)

    def children(self, node) -> list:
        return self._tree.children(node)

    def contains(self, node) -> bool:
        return self._tree.contains(node)


def dominance_frontiers(function: Function) -> dict[int, set[BasicBlock]]:
    """Block-level dominance frontiers (for SSA construction)."""
    tree = DominatorTree.block_level(function)
    frontiers: dict[int, set[BasicBlock]] = {id(b): set() for b in function.blocks}
    for block in function.blocks:
        preds = [p for p in block.predecessors() if tree.contains(p)]
        if len(preds) < 2:
            continue
        idom = tree.idom(block)
        for pred in preds:
            runner = pred
            while runner is not None and runner is not idom:
                frontiers[id(runner)].add(block)
                runner = tree.idom(runner)
    return frontiers
