"""Lightweight memory dependence analysis.

Provides the ``dependence edge`` IDL atom and the aliasing information the
transformer needs for its runtime guard generation (paper §6.3). The
analysis is deliberately simple — base-pointer provenance tracking — which
matches the paper's static treatment (it explicitly leaves full alias
analysis to runtime checks for dense idioms and concedes unsoundness for
sparse corner cases).
"""

from __future__ import annotations

from ..ir.instructions import (
    CallInst,
    CastInst,
    GEPInst,
    Instruction,
    LoadInst,
    PhiInst,
    SelectInst,
    StoreInst,
)
from ..ir.values import Argument, GlobalVariable, Value


def base_pointer(pointer: Value) -> Value | None:
    """Trace a pointer back to its root object (argument, global, alloca).

    Returns None when the provenance is ambiguous (phi/select of pointers).
    """
    seen: set[int] = set()
    node = pointer
    while id(node) not in seen:
        seen.add(id(node))
        if isinstance(node, GEPInst):
            node = node.pointer
        elif isinstance(node, CastInst) and node.opcode == "bitcast":
            node = node.value
        elif isinstance(node, (PhiInst, SelectInst)):
            return None
        else:
            return node
    return None


def may_alias(a: Value, b: Value) -> bool:
    """May the two pointer values reference overlapping memory?

    Distinct allocas never alias; distinct globals never alias; an alloca
    never aliases a global. Everything else (e.g. two pointer arguments) may.
    """
    base_a = base_pointer(a)
    base_b = base_pointer(b)
    if base_a is None or base_b is None:
        return True
    if base_a is base_b:
        return True
    from ..ir.instructions import AllocaInst

    def is_distinct_object(v: Value) -> bool:
        return isinstance(v, (AllocaInst, GlobalVariable))

    if is_distinct_object(base_a) and is_distinct_object(base_b):
        return False
    # GlobalsModRef-style assumption: module globals never escape this
    # single translation unit, so a pointer argument cannot alias them
    # (nor a non-escaping alloca). Two arguments may always alias.
    if is_distinct_object(base_a) and isinstance(base_b, Argument):
        return False
    if is_distinct_object(base_b) and isinstance(base_a, Argument):
        return False
    return True


def accessed_pointer(inst: Instruction) -> Value | None:
    if isinstance(inst, LoadInst):
        return inst.pointer
    if isinstance(inst, StoreInst):
        return inst.pointer
    return None


def has_dependence_edge(a: Instruction, b: Instruction) -> bool:
    """IDL atom ``{a} has dependence edge to {b}``.

    True when both touch memory, at least one writes, and the locations may
    alias. Calls are treated as touching everything unless pure.
    """
    def writes(inst: Instruction) -> bool:
        return isinstance(inst, StoreInst) or (
            isinstance(inst, CallInst) and not inst.is_pure())

    def touches(inst: Instruction) -> bool:
        return isinstance(inst, (LoadInst, StoreInst)) or (
            isinstance(inst, CallInst) and not inst.is_pure())

    if not (touches(a) and touches(b)):
        return False
    if not (writes(a) or writes(b)):
        return False
    pa, pb = accessed_pointer(a), accessed_pointer(b)
    if pa is None or pb is None:
        return True  # an impure call conflicts with any access
    return may_alias(pa, pb)
