"""IR analyses: CFGs, dominance, loops, SESE regions, data/memory flow.

All control-flow analyses exist at instruction granularity (the level IDL
operates at, per paper §3) with block-level variants where passes need them.
"""

from .cfg import InstructionCFG, block_rpo, generic_rpo, reachable_blocks
from .dataflow import (
    all_data_flow_passes_through,
    data_operands,
    data_users,
    flow_killed_by,
    has_dataflow_edge,
    reaches_via_dataflow,
    transitive_data_users,
)
from .dominators import DominatorTree, GenericDomTree, dominance_frontiers
from .info import FunctionAnalyses
from .loops import Loop, LoopInfo, perfect_nest_depth
from .memdep import base_pointer, has_dependence_edge, may_alias
from .sese import ControlDependence, Region, function_regions, is_sese_pair

__all__ = [
    "InstructionCFG", "block_rpo", "generic_rpo", "reachable_blocks",
    "all_data_flow_passes_through", "data_operands", "data_users",
    "flow_killed_by", "has_dataflow_edge", "reaches_via_dataflow",
    "transitive_data_users",
    "DominatorTree", "GenericDomTree", "dominance_frontiers",
    "FunctionAnalyses",
    "Loop", "LoopInfo", "perfect_nest_depth",
    "base_pointer", "has_dependence_edge", "may_alias",
    "ControlDependence", "Region", "function_regions", "is_sese_pair",
]
