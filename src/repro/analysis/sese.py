"""Single-entry single-exit regions and control dependence.

A SESE region (paper §4.1, after Johnson/Pearson/Pingali) is spanned by two
instructions A ("begin") and B ("end") such that A dominates B, B
post-dominates A, and every cycle containing one contains the other. The
IDL library re-derives this from atomic constraints; this module provides
the same notion as a standalone analysis for the transformer and baselines,
plus control dependence via post-dominance.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.instructions import BranchInst, Instruction
from ..ir.module import BasicBlock, Function
from .cfg import InstructionCFG
from .dominators import DominatorTree


@dataclass(frozen=True)
class Region:
    """A SESE region delimited by instructions ``begin`` and ``end``."""

    begin: Instruction
    end: Instruction

    def blocks(self) -> list[BasicBlock]:
        """Blocks whose instructions all sit between begin and end on every
        path — computed as blocks reachable from begin without passing
        through end's successor edge."""
        start = self.begin.parent
        stop = self.end.parent
        assert start is not None and stop is not None
        result: list[BasicBlock] = []
        seen: set[int] = set()
        stack = [start]
        while stack:
            block = stack.pop()
            if id(block) in seen:
                continue
            seen.add(id(block))
            result.append(block)
            if block is stop:
                continue
            stack.extend(block.successors())
        return result

    def instructions(self) -> list[Instruction]:
        result: list[Instruction] = []
        for block in self.blocks():
            result.extend(block.instructions)
        return result


class ControlDependence:
    """Instruction-level control dependence (Ferrante-Ottenstein-Warren).

    Instruction B is control dependent on branch A when A has one successor
    from which B is always reached (B post-dominates it) and another from
    which B may be avoided.
    """

    def __init__(self, cfg: InstructionCFG,
                 postdom: DominatorTree | None = None):
        self.cfg = cfg
        self.postdom = postdom or DominatorTree.instruction_level(cfg, post=True)

    def depends_on(self, b: Instruction, a: Instruction) -> bool:
        """Is ``b`` control dependent on ``a``?"""
        succs = self.cfg.successors(a)
        if len(succs) < 2:
            return False
        on_some = any(self.postdom.dominates(b, s) for s in succs)
        on_all = all(self.postdom.dominates(b, s) for s in succs)
        return on_some and not on_all

    def controllers(self, b: Instruction) -> list[Instruction]:
        return [a for a in self.cfg.nodes
                if isinstance(a, BranchInst) and self.depends_on(b, a)]


def is_sese_pair(cfg: InstructionCFG, dom: DominatorTree,
                 postdom: DominatorTree, begin: Instruction,
                 end: Instruction) -> bool:
    """Check the three SESE conditions for an instruction pair."""
    if not dom.dominates(begin, end):
        return False
    if not postdom.dominates(end, begin):
        return False
    # Cycle equivalence, phrased as in the paper's IDL (Figure 9): any path
    # looping from end back to begin must pass through both; equivalently a
    # cycle through begin must pass end and vice versa.
    if cfg.reachable_avoiding(end, begin, [end, begin]) and False:
        return False
    # Cycle containing begin must contain end:
    if cfg.reachable_avoiding(begin, begin, [end]):
        return False
    # Cycle containing end must contain begin:
    if cfg.reachable_avoiding(end, end, [begin]):
        return False
    return True


def function_regions(function: Function,
                     max_regions: int = 10000) -> list[Region]:
    """Enumerate SESE regions whose begin/end are block boundaries.

    Restricted to pairs (first-instruction-of-block, terminator-of-block)
    — the granularity at which the transformer outlines regions.
    """
    cfg = InstructionCFG(function)
    dom = DominatorTree.instruction_level(cfg)
    postdom = DominatorTree.instruction_level(cfg, post=True)
    regions: list[Region] = []
    for bstart in function.blocks:
        if not bstart.instructions:
            continue
        begin = bstart.instructions[0]
        for bend in function.blocks:
            term = bend.terminator
            if term is None:
                continue
            if is_sese_pair(cfg, dom, postdom, begin, term):
                regions.append(Region(begin, term))
                if len(regions) >= max_regions:
                    return regions
    return regions
