"""Per-function analysis cache.

Constructing dominator trees is the expensive part of constraint solving;
:class:`FunctionAnalyses` computes each analysis once per function and the
IDL atoms share it. Invalidate (drop) the object after transforming IR.
"""

from __future__ import annotations

from ..ir.module import Function
from .cfg import InstructionCFG
from .dominators import DominatorTree
from .loops import LoopInfo
from .sese import ControlDependence


class FunctionAnalyses:
    """Lazily-computed analyses for one function."""

    def __init__(self, function: Function):
        self.function = function
        self._cfg: InstructionCFG | None = None
        self._dom: DominatorTree | None = None
        self._postdom: DominatorTree | None = None
        self._block_dom: DominatorTree | None = None
        self._block_postdom: DominatorTree | None = None
        self._loops: LoopInfo | None = None
        self._control_dep: ControlDependence | None = None

    @property
    def cfg(self) -> InstructionCFG:
        if self._cfg is None:
            self._cfg = InstructionCFG(self.function)
        return self._cfg

    @property
    def dom(self) -> DominatorTree:
        if self._dom is None:
            self._dom = DominatorTree.instruction_level(self.cfg)
        return self._dom

    @property
    def postdom(self) -> DominatorTree:
        if self._postdom is None:
            self._postdom = DominatorTree.instruction_level(self.cfg, post=True)
        return self._postdom

    @property
    def block_dom(self) -> DominatorTree:
        if self._block_dom is None:
            self._block_dom = DominatorTree.block_level(self.function)
        return self._block_dom

    @property
    def block_postdom(self) -> DominatorTree:
        if self._block_postdom is None:
            self._block_postdom = DominatorTree.block_level(
                self.function, post=True)
        return self._block_postdom

    @property
    def loops(self) -> LoopInfo:
        if self._loops is None:
            self._loops = LoopInfo(self.function)
        return self._loops

    @property
    def control_dep(self) -> ControlDependence:
        if self._control_dep is None:
            self._control_dep = ControlDependence(self.cfg, self.postdom)
        return self._control_dep
