"""Per-function analysis cache.

Constructing dominator trees is the expensive part of constraint solving;
:class:`FunctionAnalyses` computes each analysis once per function and the
IDL atoms share it. The object also carries the candidate indexes the
constraint solver's generators draw from (instructions by opcode, loads and
stores by base pointer, phis by block) and the per-function memo table for
compiled sub-constraint plans, so one instance serves every idiom matched
against the function. Invalidate (drop) the object after transforming IR.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.instructions import Instruction, LoadInst, PhiInst, StoreInst
from ..ir.module import Function
from ..ir.values import GlobalVariable, Value
from .cfg import InstructionCFG
from .dominators import DominatorTree
from .loops import LoopInfo
from .memdep import base_pointer
from .sese import ControlDependence


@dataclass(frozen=True)
class AnalysisSummary:
    """The serializable digest of a :class:`FunctionAnalyses`.

    Carries exactly the derived facts that are (a) pure functions of the
    IR and (b) worth shipping across process or session boundaries: the
    feasibility-signature inputs the plan forest checks before solving
    (``opcodes``/``max_loop_depth``) plus cheap size counters for
    reporting. The artifact cache (:mod:`repro.cache`) persists one per
    function fingerprint; a warm solver adopts it via
    :meth:`FunctionAnalyses.adopt_summary` instead of rebuilding loop
    info. Never includes object references — everything is plain data.
    """

    block_count: int
    instruction_count: int
    opcodes: tuple[str, ...]  # sorted
    loop_count: int
    max_loop_depth: int

    def as_dict(self) -> dict:
        return {
            "block_count": self.block_count,
            "instruction_count": self.instruction_count,
            "opcodes": list(self.opcodes),
            "loop_count": self.loop_count,
            "max_loop_depth": self.max_loop_depth,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AnalysisSummary":
        return cls(
            block_count=int(data["block_count"]),
            instruction_count=int(data["instruction_count"]),
            opcodes=tuple(str(op) for op in data["opcodes"]),
            loop_count=int(data["loop_count"]),
            max_loop_depth=int(data["max_loop_depth"]),
        )


class FunctionAnalyses:
    """Lazily-computed analyses for one function."""

    def __init__(self, function: Function):
        self.function = function
        self._cfg: InstructionCFG | None = None
        self._dom: DominatorTree | None = None
        self._postdom: DominatorTree | None = None
        self._block_dom: DominatorTree | None = None
        self._block_postdom: DominatorTree | None = None
        self._loops: LoopInfo | None = None
        self._control_dep: ControlDependence | None = None
        self._by_opcode: dict[str, list[Instruction]] | None = None
        self._phis_by_block: dict[int, list[PhiInst]] | None = None
        self._loads_by_base: dict[int, list[LoadInst]] | None = None
        self._stores_by_base: dict[int, list[StoreInst]] | None = None
        self._by_type_kind: dict[str, list[Value]] | None = None
        self._universe: list[Value] | None = None
        self._opcode_set: frozenset[str] | None = None
        self._max_loop_depth: int | None = None
        #: Solution sets of memoized sub-constraints (e.g. ``For``), keyed
        #: by the sub-constraint's cache key. Shared by every solver that
        #: runs over this function.
        self.memo_solutions: dict[str, list[dict]] = {}
        #: The plan forest's shared per-function subquery memo: collect
        #: instance sets keyed by (structural signature, context bindings).
        #: Filled during one detection pass and shared by every idiom in
        #: it, so structurally identical collects (e.g. Reduction's and
        #: Histogram's vector-read families) enumerate once per context.
        self.subquery_cache: dict[tuple, list[dict]] = {}

    @property
    def cfg(self) -> InstructionCFG:
        if self._cfg is None:
            self._cfg = InstructionCFG(self.function)
        return self._cfg

    @property
    def dom(self) -> DominatorTree:
        if self._dom is None:
            self._dom = DominatorTree.instruction_level(self.cfg)
        return self._dom

    @property
    def postdom(self) -> DominatorTree:
        if self._postdom is None:
            self._postdom = DominatorTree.instruction_level(self.cfg, post=True)
        return self._postdom

    @property
    def block_dom(self) -> DominatorTree:
        if self._block_dom is None:
            self._block_dom = DominatorTree.block_level(self.function)
        return self._block_dom

    @property
    def block_postdom(self) -> DominatorTree:
        if self._block_postdom is None:
            self._block_postdom = DominatorTree.block_level(
                self.function, post=True)
        return self._block_postdom

    @property
    def loops(self) -> LoopInfo:
        if self._loops is None:
            self._loops = LoopInfo(self.function)
        return self._loops

    @property
    def control_dep(self) -> ControlDependence:
        if self._control_dep is None:
            self._control_dep = ControlDependence(self.cfg, self.postdom)
        return self._control_dep

    # -- candidate indexes ----------------------------------------------------
    @property
    def by_opcode(self) -> dict[str, list[Instruction]]:
        """Instructions grouped by opcode, in program order."""
        if self._by_opcode is None:
            index: dict[str, list[Instruction]] = {}
            for inst in self.function.instructions():
                index.setdefault(inst.opcode, []).append(inst)
            self._by_opcode = index
        return self._by_opcode

    @property
    def phis_by_block(self) -> dict[int, list[PhiInst]]:
        """Phi instructions grouped by ``id`` of their basic block."""
        if self._phis_by_block is None:
            index: dict[int, list[PhiInst]] = {}
            for phi in self.by_opcode.get("phi", ()):
                index.setdefault(id(phi.parent), []).append(phi)
            self._phis_by_block = index
        return self._phis_by_block

    @property
    def loads_by_base(self) -> dict[int, list[LoadInst]]:
        """Loads grouped by ``id`` of their root base pointer.

        Loads whose provenance is ambiguous (phi/select of pointers) are
        grouped under key 0 — callers that restrict candidates by base must
        always include that bucket.
        """
        if self._loads_by_base is None:
            index: dict[int, list[LoadInst]] = {}
            for inst in self.by_opcode.get("load", ()):
                base = base_pointer(inst.pointer)
                index.setdefault(0 if base is None else id(base),
                                 []).append(inst)
            self._loads_by_base = index
        return self._loads_by_base

    @property
    def stores_by_base(self) -> dict[int, list[StoreInst]]:
        """Stores grouped by ``id`` of their root base pointer (0 = unknown)."""
        if self._stores_by_base is None:
            index: dict[int, list[StoreInst]] = {}
            for inst in self.by_opcode.get("store", ()):
                base = base_pointer(inst.pointer)
                index.setdefault(0 if base is None else id(base),
                                 []).append(inst)
            self._stores_by_base = index
        return self._stores_by_base

    @property
    def opcode_set(self) -> frozenset[str]:
        """The opcodes present in the function — the index the forest's
        compile-time feasibility signatures are checked against."""
        if self._opcode_set is None:
            self._opcode_set = frozenset(self.by_opcode)
        return self._opcode_set

    @property
    def max_loop_depth(self) -> int:
        """Deepest natural-loop nesting in the function (0 = loop-free)."""
        if self._max_loop_depth is None:
            self._max_loop_depth = max(
                (loop.depth for loop in self.loops.loops), default=0)
        return self._max_loop_depth

    # -- serializable summary -------------------------------------------------
    def summary(self) -> AnalysisSummary:
        """Digest this function's derived facts into plain data (computes
        the opcode index and loop info if not already cached)."""
        return AnalysisSummary(
            block_count=len(self.function.blocks),
            instruction_count=sum(
                len(insts) for insts in self.by_opcode.values()),
            opcodes=tuple(sorted(self.opcode_set)),
            loop_count=len(self.loops.loops),
            max_loop_depth=self.max_loop_depth,
        )

    def adopt_summary(self, summary: AnalysisSummary) -> None:
        """Seed the analyses a summary can answer without recomputing them.

        Only facts that are pure functions of the IR may be adopted; the
        caller is responsible for pairing the summary with the function it
        was computed from (the artifact cache guarantees this by keying
        summaries on the function's content fingerprint)."""
        self._opcode_set = frozenset(summary.opcodes)
        self._max_loop_depth = summary.max_loop_depth

    @property
    def universe(self) -> list[Value]:
        """Every enumerable value: arguments, module globals, instructions."""
        if self._universe is None:
            module = self.function.module
            global_values: list[Value] = (
                list(module.globals.values()) if module is not None else [])
            self._universe = (list(self.function.args) + global_values +
                              list(self.function.instructions()))
        return self._universe

    @property
    def by_type_kind(self) -> dict[str, list[Value]]:
        """Universe values grouped by IDL type kind, in universe order."""
        if self._by_type_kind is None:
            index: dict[str, list[Value]] = {
                "integer": [], "float": [], "pointer": []}
            for value in self.universe:
                if value.type.is_integer():
                    index["integer"].append(value)
                elif value.type.is_float():
                    index["float"].append(value)
                elif value.type.is_pointer():
                    index["pointer"].append(value)
            self._by_type_kind = index
        return self._by_type_kind
