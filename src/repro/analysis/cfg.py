"""Control-flow graphs at block and instruction granularity.

The paper's IDL evaluates control flow "on the granularity of instructions
... there is no notion of basic blocks" (§3). :class:`InstructionCFG` is
that graph: nodes are instructions, edges fall through within a block and
follow branch targets between blocks.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable

from ..ir.instructions import BranchInst, Instruction
from ..ir.module import BasicBlock, Function


class InstructionCFG:
    """Instruction-granularity CFG of one function (immutable snapshot)."""

    def __init__(self, function: Function):
        self.function = function
        self.nodes: list[Instruction] = list(function.instructions())
        self._succs: dict[int, list[Instruction]] = {}
        self._preds: dict[int, list[Instruction]] = {}
        for inst in self.nodes:
            self._succs[id(inst)] = []
            self._preds[id(inst)] = []
        for block in function.blocks:
            insts = block.instructions
            for i, inst in enumerate(insts[:-1]):
                self._add_edge(inst, insts[i + 1])
            term = block.terminator
            if isinstance(term, BranchInst):
                for target in term.targets():
                    if target.instructions:
                        self._add_edge(term, target.instructions[0])

    def _add_edge(self, src: Instruction, dst: Instruction) -> None:
        self._succs[id(src)].append(dst)
        self._preds[id(dst)].append(src)

    @property
    def entry(self) -> Instruction:
        return self.function.entry.instructions[0]

    def successors(self, inst: Instruction) -> list[Instruction]:
        return self._succs.get(id(inst), [])

    def predecessors(self, inst: Instruction) -> list[Instruction]:
        return self._preds.get(id(inst), [])

    def exits(self) -> list[Instruction]:
        """Instructions with no CFG successor (rets, unreachables)."""
        return [inst for inst in self.nodes if not self._succs[id(inst)]]

    def has_edge(self, src: Instruction, dst: Instruction) -> bool:
        return any(s is dst for s in self._succs.get(id(src), ()))

    def reachable_avoiding(self, source: Instruction, target: Instruction,
                           blocked: Iterable[Instruction]) -> bool:
        """Is ``target`` reachable from ``source`` on a path that leaves
        ``source``, without passing *through* any node in ``blocked``?

        Edges out of ``source`` are followed even if source is blocked;
        arriving at ``target`` counts even if target is blocked. This is the
        path semantics used by IDL's "all flow ... passes through" atoms:
        a path passes through C if C appears strictly between its endpoints.
        """
        blocked_ids = {id(b) for b in blocked}
        stack = [s for s in self.successors(source)]
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if node is target:
                return True
            if id(node) in seen or id(node) in blocked_ids:
                continue
            seen.add(id(node))
            stack.extend(self.successors(node))
        return False

    def all_paths_pass_through(self, source: Instruction, target: Instruction,
                               via: Instruction) -> bool:
        """Does every source→target path pass through ``via``?

        Vacuously true when target is unreachable from source.
        """
        if via is source or via is target:
            return True
        return not self.reachable_avoiding(source, target, [via])


def block_rpo(function: Function) -> list[BasicBlock]:
    """Blocks of ``function`` in reverse post-order from the entry."""
    seen: set[int] = set()
    order: list[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        stack = [(block, iter(block.successors()))]
        seen.add(id(block))
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if id(succ) not in seen:
                    seen.add(id(succ))
                    stack.append((succ, iter(succ.successors())))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()

    visit(function.entry)
    order.reverse()
    return order


def reachable_blocks(function: Function) -> set[int]:
    """ids of blocks reachable from the entry block."""
    return {id(b) for b in block_rpo(function)}


def generic_rpo(entries: list, successors: Callable) -> list:
    """Reverse post-order over an arbitrary graph given by ``successors``."""
    seen: set[int] = set()
    order: list = []
    for entry in entries:
        if id(entry) in seen:
            continue
        seen.add(id(entry))
        stack = [(entry, iter(successors(entry)))]
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if id(succ) not in seen:
                    seen.add(id(succ))
                    stack.append((succ, iter(successors(succ))))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()
    order.reverse()
    return order
