"""Natural loop detection at block granularity.

Used by the baselines (Polly/ICC-style detectors), the transformer (to find
the code region covered by an idiom) and the interpreter's hot-region
accounting. IDL itself matches loops structurally through constraints, but
produces witnesses that map onto these Loop objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.instructions import (
    BinaryOperator,
    BranchInst,
    ICmpInst,
    Instruction,
    PhiInst,
)
from ..ir.module import BasicBlock, Function
from ..ir.values import Value
from .dominators import DominatorTree


@dataclass
class Loop:
    """One natural loop: header plus the body blocks of its back edges."""

    header: BasicBlock
    latches: list[BasicBlock]
    blocks: list[BasicBlock]
    parent: "Loop | None" = None
    children: list["Loop"] = field(default_factory=list)

    @property
    def depth(self) -> int:
        depth = 1
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def contains_block(self, block: BasicBlock) -> bool:
        return any(b is block for b in self.blocks)

    def contains(self, inst: Instruction) -> bool:
        return inst.parent is not None and self.contains_block(inst.parent)

    def preheader(self) -> BasicBlock | None:
        """The unique out-of-loop predecessor of the header, if any."""
        outside = [p for p in self.header.predecessors()
                   if not self.contains_block(p)]
        if len(outside) == 1:
            return outside[0]
        return None

    def exit_blocks(self) -> list[BasicBlock]:
        exits: list[BasicBlock] = []
        for block in self.blocks:
            for succ in block.successors():
                if not self.contains_block(succ) and succ not in exits:
                    exits.append(succ)
        return exits

    def instructions(self) -> list[Instruction]:
        result: list[Instruction] = []
        for block in self.blocks:
            result.extend(block.instructions)
        return result

    def induction_phi(self) -> PhiInst | None:
        """The canonical induction variable phi: fed around the back edge
        by an add of itself with a loop-invariant step (which excludes
        accumulators like ``s += a[i]`` whose addend varies)."""
        for phi in self.header.phis():
            for value, block in phi.incoming:
                if not self.contains_block(block):
                    continue
                if isinstance(value, BinaryOperator) and value.opcode == "add":
                    step = None
                    if value.lhs is phi:
                        step = value.rhs
                    elif value.rhs is phi:
                        step = value.lhs
                    if step is not None and not (
                            isinstance(step, Instruction)
                            and self.contains(step)):
                        return phi
        return None

    def bound_compare(self) -> ICmpInst | None:
        """The icmp guarding the header's conditional branch, if present."""
        term = self.header.terminator
        if isinstance(term, BranchInst) and term.is_conditional():
            cond = term.condition
            if isinstance(cond, ICmpInst):
                return cond
        return None

    def trip_bounds(self) -> tuple[Value, Value] | None:
        """(begin, end) values of a canonical counted loop, if recognisable."""
        phi = self.induction_phi()
        cmp = self.bound_compare()
        if phi is None or cmp is None:
            return None
        begin = None
        for value, block in phi.incoming:
            if not self.contains_block(block):
                begin = value
        if begin is None:
            return None
        if cmp.lhs is phi:
            return begin, cmp.rhs
        if cmp.rhs is phi:
            return begin, cmp.lhs
        return None

    def __repr__(self) -> str:
        return (f"<Loop header=%{self.header.name} depth={self.depth} "
                f"blocks={len(self.blocks)}>")


class LoopInfo:
    """All natural loops of a function, with nesting structure."""

    def __init__(self, function: Function):
        self.function = function
        self.loops: list[Loop] = []
        tree = DominatorTree.block_level(function)

        # Group back edges by header so each header yields one loop.
        back_edges: dict[int, tuple[BasicBlock, list[BasicBlock]]] = {}
        for block in function.blocks:
            for succ in block.successors():
                if tree.dominates(succ, block):
                    header, latches = back_edges.setdefault(id(succ), (succ, []))
                    latches.append(block)

        for header, latches in back_edges.values():
            blocks = self._collect_body(header, latches)
            self.loops.append(Loop(header, latches, blocks))

        self._assign_nesting()
        # Sort outer loops first, then by appearance.
        order = {id(b): i for i, b in enumerate(function.blocks)}
        self.loops.sort(key=lambda l: (l.depth, order.get(id(l.header), 0)))

    @staticmethod
    def _collect_body(header: BasicBlock,
                      latches: list[BasicBlock]) -> list[BasicBlock]:
        body = {id(header): header}
        stack = list(latches)
        while stack:
            block = stack.pop()
            if id(block) in body:
                continue
            body[id(block)] = block
            stack.extend(block.predecessors())
        # Preserve function block order for determinism.
        return [b for b in header.parent.blocks if id(b) in body]

    def _assign_nesting(self) -> None:
        # A loop is nested in the smallest other loop containing its header.
        for loop in self.loops:
            best: Loop | None = None
            for other in self.loops:
                if other is loop:
                    continue
                if other.contains_block(loop.header) and \
                        all(other.contains_block(b) for b in loop.blocks):
                    if best is None or len(other.blocks) < len(best.blocks):
                        best = other
            loop.parent = best
            if best is not None:
                best.children.append(loop)

    def loop_of_block(self, block: BasicBlock) -> Loop | None:
        """Innermost loop containing ``block``."""
        best: Loop | None = None
        for loop in self.loops:
            if loop.contains_block(block):
                if best is None or len(loop.blocks) < len(best.blocks):
                    best = loop
        return best

    def loop_of(self, inst: Instruction) -> Loop | None:
        if inst.parent is None:
            return None
        return self.loop_of_block(inst.parent)

    def top_level(self) -> list[Loop]:
        return [l for l in self.loops if l.parent is None]

    def __repr__(self) -> str:
        return f"<LoopInfo {self.function.name}: {len(self.loops)} loops>"


def perfect_nest_depth(loop: Loop) -> int:
    """Depth of the perfect nest rooted at ``loop`` (1 if not nested)."""
    depth = 1
    current = loop
    while len(current.children) == 1:
        child = current.children[0]
        # Perfect nesting: the child covers all of the parent's body except
        # the parent's own header/latch bookkeeping blocks.
        depth += 1
        current = child
    return depth
