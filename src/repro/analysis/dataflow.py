"""Def-use (data flow) utilities used by IDL atoms and the transformer."""

from __future__ import annotations

from typing import Iterable

from ..ir.instructions import Instruction, PhiInst
from ..ir.values import User, Value
from .cfg import InstructionCFG


def has_dataflow_edge(src: Value, dst: Value) -> bool:
    """Direct def→use edge: ``dst`` has ``src`` as an operand.

    Phi block operands do not count as data flow.
    """
    if not isinstance(dst, User):
        return False
    if isinstance(dst, PhiInst):
        return any(v is src for v, _ in dst.incoming)
    return any(op is src for op in dst.operands)


def data_users(value: Value) -> list[User]:
    """Distinct users reached by a direct data-flow edge."""
    result: list[User] = []
    for user in value.users():
        if has_dataflow_edge(value, user):
            result.append(user)
    return result


def data_operands(value: Value) -> list[Value]:
    """Operands feeding ``value`` via data flow (skips phi block slots)."""
    if isinstance(value, PhiInst):
        return [v for v, _ in value.incoming]
    if isinstance(value, User):
        return list(value.operands)
    return []


def reaches_via_dataflow(src: Value, dst: Value,
                         blocked: Iterable[Value] = ()) -> bool:
    """Is there a def-use path from ``src`` to ``dst`` avoiding ``blocked``?

    ``blocked`` nodes terminate the search (paths may end, not pass through).
    """
    blocked_ids = {id(b) for b in blocked}
    stack = [u for u in data_users(src)]
    seen: set[int] = set()
    while stack:
        node = stack.pop()
        if node is dst:
            return True
        if id(node) in seen or id(node) in blocked_ids:
            continue
        seen.add(id(node))
        stack.extend(data_users(node))
    return False


def all_data_flow_passes_through(src: Value, dst: Value, via: Value) -> bool:
    """Every def-use path src→dst passes through ``via`` (vacuous if none)."""
    if via is src or via is dst:
        return True
    return not reaches_via_dataflow(src, dst, [via])


def transitive_data_users(value: Value) -> set[int]:
    """ids of every value reachable from ``value`` along def-use edges."""
    seen: set[int] = set()
    stack = list(data_users(value))
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.extend(data_users(node))
    return seen


def flow_killed_by(sources: list[Value], sinks: list[Value],
                   kills: list[Value], cfg: InstructionCFG | None = None) -> bool:
    """IDL atom ``all flow from {S} to {T} is killed by {K}``.

    Considers the combined data-flow + control-flow graph and requires that
    no sink is reachable from any source once the kill nodes are removed.
    """
    kill_ids = {id(k) for k in kills}
    sink_ids = {id(t) for t in sinks}

    def successors(node: Value) -> list[Value]:
        succ: list[Value] = list(data_users(node))
        if cfg is not None and isinstance(node, Instruction):
            succ.extend(cfg.successors(node))
        return succ

    for source in sources:
        stack = [s for s in successors(source) if id(s) not in kill_ids]
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if id(node) in sink_ids:
                return False
            if id(node) in seen:
                continue
            seen.add(id(node))
            for nxt in successors(node):
                if id(nxt) not in kill_ids:
                    stack.append(nxt)
    return True
